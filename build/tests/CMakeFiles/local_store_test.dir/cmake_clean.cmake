file(REMOVE_RECURSE
  "CMakeFiles/local_store_test.dir/local_store_test.cc.o"
  "CMakeFiles/local_store_test.dir/local_store_test.cc.o.d"
  "local_store_test"
  "local_store_test.pdb"
  "local_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
