# Empty dependencies file for local_store_test.
# This may be replaced when dependencies are built.
