# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mw_engine_test.
