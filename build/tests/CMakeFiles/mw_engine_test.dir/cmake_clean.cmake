file(REMOVE_RECURSE
  "CMakeFiles/mw_engine_test.dir/mw_engine_test.cc.o"
  "CMakeFiles/mw_engine_test.dir/mw_engine_test.cc.o.d"
  "mw_engine_test"
  "mw_engine_test.pdb"
  "mw_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mw_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
