# Empty compiler generated dependencies file for mw_engine_test.
# This may be replaced when dependencies are built.
