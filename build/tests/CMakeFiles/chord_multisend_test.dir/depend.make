# Empty dependencies file for chord_multisend_test.
# This may be replaced when dependencies are built.
