file(REMOVE_RECURSE
  "CMakeFiles/chord_multisend_test.dir/chord_multisend_test.cc.o"
  "CMakeFiles/chord_multisend_test.dir/chord_multisend_test.cc.o.d"
  "chord_multisend_test"
  "chord_multisend_test.pdb"
  "chord_multisend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chord_multisend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
