file(REMOVE_RECURSE
  "CMakeFiles/mw_query_test.dir/mw_query_test.cc.o"
  "CMakeFiles/mw_query_test.dir/mw_query_test.cc.o.d"
  "mw_query_test"
  "mw_query_test.pdb"
  "mw_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mw_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
