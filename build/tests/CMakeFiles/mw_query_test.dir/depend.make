# Empty dependencies file for mw_query_test.
# This may be replaced when dependencies are built.
