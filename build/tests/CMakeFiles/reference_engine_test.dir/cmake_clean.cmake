file(REMOVE_RECURSE
  "CMakeFiles/reference_engine_test.dir/reference_engine_test.cc.o"
  "CMakeFiles/reference_engine_test.dir/reference_engine_test.cc.o.d"
  "reference_engine_test"
  "reference_engine_test.pdb"
  "reference_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reference_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
