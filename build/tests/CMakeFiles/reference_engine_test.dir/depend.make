# Empty dependencies file for reference_engine_test.
# This may be replaced when dependencies are built.
