# Empty compiler generated dependencies file for onetime_test.
# This may be replaced when dependencies are built.
