file(REMOVE_RECURSE
  "CMakeFiles/onetime_test.dir/onetime_test.cc.o"
  "CMakeFiles/onetime_test.dir/onetime_test.cc.o.d"
  "onetime_test"
  "onetime_test.pdb"
  "onetime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onetime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
