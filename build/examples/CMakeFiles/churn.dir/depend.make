# Empty dependencies file for churn.
# This may be replaced when dependencies are built.
