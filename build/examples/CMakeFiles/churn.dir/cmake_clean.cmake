file(REMOVE_RECURSE
  "CMakeFiles/churn.dir/churn.cpp.o"
  "CMakeFiles/churn.dir/churn.cpp.o.d"
  "churn"
  "churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
