file(REMOVE_RECURSE
  "CMakeFiles/shell.dir/shell.cpp.o"
  "CMakeFiles/shell.dir/shell.cpp.o.d"
  "shell"
  "shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
