file(REMOVE_RECURSE
  "CMakeFiles/fig_traffic_jfrt.dir/fig_traffic_jfrt.cc.o"
  "CMakeFiles/fig_traffic_jfrt.dir/fig_traffic_jfrt.cc.o.d"
  "fig_traffic_jfrt"
  "fig_traffic_jfrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_traffic_jfrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
