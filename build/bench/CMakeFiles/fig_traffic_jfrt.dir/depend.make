# Empty dependencies file for fig_traffic_jfrt.
# This may be replaced when dependencies are built.
