# Empty dependencies file for fig_scal_tuple_rate.
# This may be replaced when dependencies are built.
