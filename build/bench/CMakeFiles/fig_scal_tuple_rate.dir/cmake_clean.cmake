file(REMOVE_RECURSE
  "CMakeFiles/fig_scal_tuple_rate.dir/fig_scal_tuple_rate.cc.o"
  "CMakeFiles/fig_scal_tuple_rate.dir/fig_scal_tuple_rate.cc.o.d"
  "fig_scal_tuple_rate"
  "fig_scal_tuple_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_scal_tuple_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
