file(REMOVE_RECURSE
  "CMakeFiles/fig_repl_filtering.dir/fig_repl_filtering.cc.o"
  "CMakeFiles/fig_repl_filtering.dir/fig_repl_filtering.cc.o.d"
  "fig_repl_filtering"
  "fig_repl_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_repl_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
