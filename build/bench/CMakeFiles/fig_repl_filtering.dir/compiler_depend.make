# Empty compiler generated dependencies file for fig_repl_filtering.
# This may be replaced when dependencies are built.
