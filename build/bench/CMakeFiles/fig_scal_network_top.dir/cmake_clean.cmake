file(REMOVE_RECURSE
  "CMakeFiles/fig_scal_network_top.dir/fig_scal_network_top.cc.o"
  "CMakeFiles/fig_scal_network_top.dir/fig_scal_network_top.cc.o.d"
  "fig_scal_network_top"
  "fig_scal_network_top.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_scal_network_top.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
