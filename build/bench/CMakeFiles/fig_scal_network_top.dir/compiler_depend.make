# Empty compiler generated dependencies file for fig_scal_network_top.
# This may be replaced when dependencies are built.
