# Empty dependencies file for ext_onetime.
# This may be replaced when dependencies are built.
