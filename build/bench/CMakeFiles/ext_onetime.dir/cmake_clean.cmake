file(REMOVE_RECURSE
  "CMakeFiles/ext_onetime.dir/ext_onetime.cc.o"
  "CMakeFiles/ext_onetime.dir/ext_onetime.cc.o.d"
  "ext_onetime"
  "ext_onetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_onetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
