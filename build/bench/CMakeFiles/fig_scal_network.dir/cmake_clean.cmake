file(REMOVE_RECURSE
  "CMakeFiles/fig_scal_network.dir/fig_scal_network.cc.o"
  "CMakeFiles/fig_scal_network.dir/fig_scal_network.cc.o.d"
  "fig_scal_network"
  "fig_scal_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_scal_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
