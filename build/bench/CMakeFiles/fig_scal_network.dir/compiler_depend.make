# Empty compiler generated dependencies file for fig_scal_network.
# This may be replaced when dependencies are built.
