# Empty dependencies file for table_algo_comparison.
# This may be replaced when dependencies are built.
