file(REMOVE_RECURSE
  "CMakeFiles/table_algo_comparison.dir/table_algo_comparison.cc.o"
  "CMakeFiles/table_algo_comparison.dir/table_algo_comparison.cc.o.d"
  "table_algo_comparison"
  "table_algo_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_algo_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
