# Empty dependencies file for fig_daiv_scal.
# This may be replaced when dependencies are built.
