file(REMOVE_RECURSE
  "CMakeFiles/fig_daiv_scal.dir/fig_daiv_scal.cc.o"
  "CMakeFiles/fig_daiv_scal.dir/fig_daiv_scal.cc.o.d"
  "fig_daiv_scal"
  "fig_daiv_scal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_daiv_scal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
