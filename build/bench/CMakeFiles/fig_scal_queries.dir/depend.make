# Empty dependencies file for fig_scal_queries.
# This may be replaced when dependencies are built.
