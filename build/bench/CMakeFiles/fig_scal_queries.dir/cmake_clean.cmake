file(REMOVE_RECURSE
  "CMakeFiles/fig_scal_queries.dir/fig_scal_queries.cc.o"
  "CMakeFiles/fig_scal_queries.dir/fig_scal_queries.cc.o.d"
  "fig_scal_queries"
  "fig_scal_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_scal_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
