file(REMOVE_RECURSE
  "CMakeFiles/fig_sai_attr_choice.dir/fig_sai_attr_choice.cc.o"
  "CMakeFiles/fig_sai_attr_choice.dir/fig_sai_attr_choice.cc.o.d"
  "fig_sai_attr_choice"
  "fig_sai_attr_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_sai_attr_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
