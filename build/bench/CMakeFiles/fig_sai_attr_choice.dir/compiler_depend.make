# Empty compiler generated dependencies file for fig_sai_attr_choice.
# This may be replaced when dependencies are built.
