file(REMOVE_RECURSE
  "CMakeFiles/fig_window_storage.dir/fig_window_storage.cc.o"
  "CMakeFiles/fig_window_storage.dir/fig_window_storage.cc.o.d"
  "fig_window_storage"
  "fig_window_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_window_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
