
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig_window_storage.cc" "bench/CMakeFiles/fig_window_storage.dir/fig_window_storage.cc.o" "gcc" "bench/CMakeFiles/fig_window_storage.dir/fig_window_storage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/contjoin_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/contjoin_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/contjoin_core.dir/DependInfo.cmake"
  "/root/repo/build/src/chord/CMakeFiles/contjoin_chord.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/contjoin_query.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/contjoin_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/contjoin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/contjoin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
