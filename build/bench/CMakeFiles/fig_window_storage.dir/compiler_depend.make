# Empty compiler generated dependencies file for fig_window_storage.
# This may be replaced when dependencies are built.
