# Empty dependencies file for fig_multisend.
# This may be replaced when dependencies are built.
