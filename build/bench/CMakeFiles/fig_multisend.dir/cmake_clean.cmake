file(REMOVE_RECURSE
  "CMakeFiles/fig_multisend.dir/fig_multisend.cc.o"
  "CMakeFiles/fig_multisend.dir/fig_multisend.cc.o.d"
  "fig_multisend"
  "fig_multisend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_multisend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
