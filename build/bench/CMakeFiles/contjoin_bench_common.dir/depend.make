# Empty dependencies file for contjoin_bench_common.
# This may be replaced when dependencies are built.
