file(REMOVE_RECURSE
  "libcontjoin_bench_common.a"
)
