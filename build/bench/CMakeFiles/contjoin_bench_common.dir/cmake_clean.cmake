file(REMOVE_RECURSE
  "CMakeFiles/contjoin_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/contjoin_bench_common.dir/bench_common.cc.o.d"
  "libcontjoin_bench_common.a"
  "libcontjoin_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contjoin_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
