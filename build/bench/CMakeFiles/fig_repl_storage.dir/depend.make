# Empty dependencies file for fig_repl_storage.
# This may be replaced when dependencies are built.
