file(REMOVE_RECURSE
  "CMakeFiles/fig_repl_storage.dir/fig_repl_storage.cc.o"
  "CMakeFiles/fig_repl_storage.dir/fig_repl_storage.cc.o.d"
  "fig_repl_storage"
  "fig_repl_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_repl_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
