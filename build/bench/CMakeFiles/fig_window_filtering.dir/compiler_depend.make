# Empty compiler generated dependencies file for fig_window_filtering.
# This may be replaced when dependencies are built.
