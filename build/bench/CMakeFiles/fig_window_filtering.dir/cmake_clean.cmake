file(REMOVE_RECURSE
  "CMakeFiles/fig_window_filtering.dir/fig_window_filtering.cc.o"
  "CMakeFiles/fig_window_filtering.dir/fig_window_filtering.cc.o.d"
  "fig_window_filtering"
  "fig_window_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_window_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
