file(REMOVE_RECURSE
  "CMakeFiles/ext_multiway.dir/ext_multiway.cc.o"
  "CMakeFiles/ext_multiway.dir/ext_multiway.cc.o.d"
  "ext_multiway"
  "ext_multiway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multiway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
