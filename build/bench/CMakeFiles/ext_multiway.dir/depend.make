# Empty dependencies file for ext_multiway.
# This may be replaced when dependencies are built.
