file(REMOVE_RECURSE
  "CMakeFiles/fig_bos_ratio.dir/fig_bos_ratio.cc.o"
  "CMakeFiles/fig_bos_ratio.dir/fig_bos_ratio.cc.o.d"
  "fig_bos_ratio"
  "fig_bos_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_bos_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
