# Empty compiler generated dependencies file for fig_bos_ratio.
# This may be replaced when dependencies are built.
