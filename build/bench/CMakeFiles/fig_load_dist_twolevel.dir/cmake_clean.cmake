file(REMOVE_RECURSE
  "CMakeFiles/fig_load_dist_twolevel.dir/fig_load_dist_twolevel.cc.o"
  "CMakeFiles/fig_load_dist_twolevel.dir/fig_load_dist_twolevel.cc.o.d"
  "fig_load_dist_twolevel"
  "fig_load_dist_twolevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_load_dist_twolevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
