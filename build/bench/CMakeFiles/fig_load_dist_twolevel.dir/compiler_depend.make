# Empty compiler generated dependencies file for fig_load_dist_twolevel.
# This may be replaced when dependencies are built.
