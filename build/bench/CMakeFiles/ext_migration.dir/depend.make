# Empty dependencies file for ext_migration.
# This may be replaced when dependencies are built.
