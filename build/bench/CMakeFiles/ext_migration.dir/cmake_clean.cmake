file(REMOVE_RECURSE
  "CMakeFiles/ext_migration.dir/ext_migration.cc.o"
  "CMakeFiles/ext_migration.dir/ext_migration.cc.o.d"
  "ext_migration"
  "ext_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
