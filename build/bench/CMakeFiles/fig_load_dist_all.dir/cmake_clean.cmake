file(REMOVE_RECURSE
  "CMakeFiles/fig_load_dist_all.dir/fig_load_dist_all.cc.o"
  "CMakeFiles/fig_load_dist_all.dir/fig_load_dist_all.cc.o.d"
  "fig_load_dist_all"
  "fig_load_dist_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_load_dist_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
