file(REMOVE_RECURSE
  "CMakeFiles/fig_traffic_queries.dir/fig_traffic_queries.cc.o"
  "CMakeFiles/fig_traffic_queries.dir/fig_traffic_queries.cc.o.d"
  "fig_traffic_queries"
  "fig_traffic_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_traffic_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
