# Empty compiler generated dependencies file for fig_traffic_queries.
# This may be replaced when dependencies are built.
