// Interactive shell over the public API: define schemas, subscribe
// continuous (two-way and multi-way) queries, insert tuples, run one-time
// joins and inspect the network — a REPL for exploring the system.
//
//   $ ./build/examples/shell            # interactive
//   $ ./build/examples/shell --demo     # scripted walk-through
//   $ ./build/examples/shell < script   # batch
//
// Commands:
//   relation <Name> (<attr> <int|double|string>, ...)
//   subscribe <node> <SELECT ...>        continuous two-way query
//   subscribe-mw <node> <SELECT ...>     continuous multi-way query
//   insert <node> <Relation> (<v1>, <v2>, ...)
//   onetime <node> <SELECT ...>          PIER-style snapshot join
//   notify <node>                        drain a node's notifications
//   stats | load | storage | help | quit

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "common/string_util.h"
#include "core/engine.h"

using namespace contjoin;

namespace {

class Shell {
 public:
  Shell() {
    core::Options options;
    options.num_nodes = 64;
    options.algorithm = core::Algorithm::kSai;
    net_ = std::make_unique<core::ContinuousQueryNetwork>(options);
  }

  /// Handles one input line; returns false on quit.
  bool Handle(const std::string& line) {
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#') return true;
    std::istringstream in{std::string(trimmed)};
    std::string cmd;
    in >> cmd;
    cmd = AsciiToLower(cmd);
    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      Help();
    } else if (cmd == "relation") {
      Relation(Rest(in));
    } else if (cmd == "subscribe" || cmd == "subscribe-mw") {
      Subscribe(in, cmd == "subscribe-mw");
    } else if (cmd == "insert") {
      Insert(in);
    } else if (cmd == "onetime") {
      OneTime(in);
    } else if (cmd == "notify") {
      Notify(in);
    } else if (cmd == "stats") {
      std::printf("%s", net_->stats().Report().c_str());
    } else if (cmd == "load") {
      std::printf("filtering load: %s\n",
                  net_->FilteringLoadDistribution().Summary().c_str());
      std::printf("storage load:   %s\n",
                  net_->StorageLoadDistribution().Summary().c_str());
    } else if (cmd == "storage") {
      core::NodeStorage s = net_->TotalStorage();
      std::printf("queries=%llu rewritten=%llu tuples=%llu daiv=%llu "
                  "mw_queries=%llu mw_partials=%llu notifications=%llu\n",
                  (unsigned long long)s.alqt_queries,
                  (unsigned long long)s.vlqt_rewritten,
                  (unsigned long long)s.vltt_tuples,
                  (unsigned long long)s.daiv_entries,
                  (unsigned long long)s.mw_queries,
                  (unsigned long long)s.mw_partials,
                  (unsigned long long)s.stored_notifications);
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    }
    return true;
  }

 private:
  static std::string Rest(std::istringstream& in) {
    std::string rest;
    std::getline(in, rest);
    return std::string(TrimWhitespace(rest));
  }

  static void Help() {
    std::printf(
        "  relation <Name> (<attr> <int|double|string>, ...)\n"
        "  subscribe <node> <SELECT ...>      continuous two-way query\n"
        "  subscribe-mw <node> <SELECT ...>   continuous multi-way query\n"
        "  insert <node> <Relation> (<v1>, <v2>, ...)\n"
        "  onetime <node> <SELECT ...>        snapshot join (PIER-style)\n"
        "  notify <node> | stats | load | storage | quit\n");
  }

  void Relation(const std::string& spec) {
    // "<Name> (a int, b string, ...)"
    size_t open = spec.find('(');
    size_t close = spec.rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      std::printf("usage: relation Name (attr type, ...)\n");
      return;
    }
    std::string name(TrimWhitespace(spec.substr(0, open)));
    std::vector<rel::Attribute> attrs;
    for (const std::string& field :
         SplitString(spec.substr(open + 1, close - open - 1), ',')) {
      std::istringstream fin{field};
      std::string attr, type;
      fin >> attr >> type;
      type = AsciiToLower(type);
      rel::ValueType vt = rel::ValueType::kInt;
      if (type == "double") {
        vt = rel::ValueType::kDouble;
      } else if (type == "string") {
        vt = rel::ValueType::kString;
      } else if (type != "int") {
        std::printf("unknown type '%s'\n", type.c_str());
        return;
      }
      attrs.push_back({attr, vt});
    }
    Status status =
        net_->catalog()->Register(rel::RelationSchema(name, attrs));
    std::printf("%s\n", status.ok()
                            ? ("registered " + name).c_str()
                            : status.ToString().c_str());
  }

  void Subscribe(std::istringstream& in, bool multiway) {
    size_t node;
    if (!(in >> node)) {
      std::printf("usage: subscribe <node> <SELECT ...>\n");
      return;
    }
    std::string sql = Rest(in);
    auto key = multiway ? net_->SubmitMultiwayQuery(node, sql)
                        : net_->SubmitQuery(node, sql);
    if (key.ok()) {
      std::printf("installed %s at node %zu\n", key->c_str(), node);
    } else {
      std::printf("%s\n", key.status().ToString().c_str());
    }
  }

  bool ParseValues(const std::string& spec, std::vector<rel::Value>* out) {
    size_t open = spec.find('(');
    size_t close = spec.rfind(')');
    if (open == std::string::npos || close == std::string::npos) return false;
    for (std::string field :
         SplitString(spec.substr(open + 1, close - open - 1), ',')) {
      std::string v(TrimWhitespace(field));
      if (v.empty() || EqualsIgnoreCase(v, "null")) {
        out->push_back(rel::Value::Null());
      } else if (v.front() == '\'' && v.back() == '\'' && v.size() >= 2) {
        out->push_back(rel::Value::Str(v.substr(1, v.size() - 2)));
      } else if (v.find('.') != std::string::npos) {
        out->push_back(rel::Value::Double(std::stod(v)));
      } else {
        try {
          out->push_back(rel::Value::Int(std::stoll(v)));
        } catch (...) {
          return false;
        }
      }
    }
    return true;
  }

  void Insert(std::istringstream& in) {
    size_t node;
    std::string relation;
    if (!(in >> node >> relation)) {
      std::printf("usage: insert <node> <Relation> (v1, v2, ...)\n");
      return;
    }
    std::vector<rel::Value> values;
    if (!ParseValues(Rest(in), &values)) {
      std::printf("could not parse the value list\n");
      return;
    }
    Status status = net_->InsertTuple(node, relation, std::move(values));
    std::printf("%s\n", status.ok() ? "ok" : status.ToString().c_str());
  }

  void OneTime(std::istringstream& in) {
    size_t node;
    if (!(in >> node)) {
      std::printf("usage: onetime <node> <SELECT ...>\n");
      return;
    }
    auto rows = net_->OneTimeJoin(node, Rest(in));
    if (!rows.ok()) {
      std::printf("%s\n", rows.status().ToString().c_str());
      return;
    }
    for (const auto& n : rows.value()) {
      std::printf("  %s\n", n.ToString().c_str());
    }
    std::printf("(%zu rows)\n", rows->size());
  }

  void Notify(std::istringstream& in) {
    size_t node;
    if (!(in >> node)) {
      std::printf("usage: notify <node>\n");
      return;
    }
    auto notifications = net_->TakeNotifications(node);
    for (const auto& n : notifications) {
      std::printf("  %s\n", n.ToString().c_str());
    }
    std::printf("(%zu notifications)\n", notifications.size());
  }

  std::unique_ptr<core::ContinuousQueryNetwork> net_;
};

int RunDemo(Shell* shell) {
  const char* kScript[] = {
      "relation Trades (Symbol string, Price double)",
      "relation Watchlist (Symbol string, Owner string)",
      "subscribe 7 SELECT T.Symbol, T.Price, W.Owner FROM Trades AS T, "
      "Watchlist AS W WHERE T.Symbol = W.Symbol AND W.Owner = 'alice'",
      "insert 3 Watchlist ('ACME', 'alice')",
      "insert 12 Trades ('ACME', 101.5)",
      "insert 20 Trades ('OTHR', 9.25)",
      "notify 7",
      "onetime 2 SELECT T.Symbol, W.Owner FROM Trades AS T, Watchlist AS W "
      "WHERE T.Symbol = W.Symbol",
      "stats",
  };
  for (const char* line : kScript) {
    std::printf("contjoin> %s\n", line);
    if (!shell->Handle(line)) break;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  if (argc > 1 && std::string(argv[1]) == "--demo") return RunDemo(&shell);
  std::printf("contjoin shell over a 64-node simulated overlay; "
              "'help' for commands.\n");
  std::string line;
  while (true) {
    std::printf("contjoin> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (!shell.Handle(line)) break;
  }
  return 0;
}
