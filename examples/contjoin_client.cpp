// contjoin_client: drives a contjoin_noded ring (or, with --oracle, an
// identical in-process engine) from a line-oriented script on stdin:
//
//   submit <node> <sql...>
//   insert <node> <relation> <value> [value...]
//   drain
//
// Operations are routed to the daemon owning the origin node
// (serial % daemons). Before every operation the client waits for
// ring-wide quiescence and advances every daemon's virtual clock to a
// common epoch boundary, so tuple publication timestamps are globally
// unique across daemons exactly as they are in a single-process run.
// `drain` collects delivered notifications from every daemon and prints
// their content keys sorted — the same lines the --oracle mode prints for
// the same script, which is what the loopback smoke test diffs.
//
//   $ printf 'submit 0 SELECT ...\ninsert 1 R 1 2 3\ndrain\n' |
//       ./contjoin_client --daemons 5 --nodes 20 --port-base 9800

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "ring_common.h"

using namespace contjoin;

namespace {

struct ClientArgs {
  int daemons = 5;
  size_t nodes = 20;
  int port_base = 9800;
  core::Algorithm algorithm = core::Algorithm::kSai;
  bool reliability = true;
  uint64_t seed = 7;
  bool oracle = false;
};

bool ParseArgs(int argc, char** argv, ClientArgs* out) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--oracle") {
      out->oracle = true;
      continue;
    }
    if (i + 1 >= argc) return false;
    std::string value = argv[++i];
    if (flag == "--daemons") {
      out->daemons = std::atoi(value.c_str());
    } else if (flag == "--nodes") {
      out->nodes = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (flag == "--port-base") {
      out->port_base = std::atoi(value.c_str());
    } else if (flag == "--algorithm") {
      if (value == "sai") out->algorithm = core::Algorithm::kSai;
      else if (value == "daiq") out->algorithm = core::Algorithm::kDaiQ;
      else if (value == "dait") out->algorithm = core::Algorithm::kDaiT;
      else if (value == "daiv") out->algorithm = core::Algorithm::kDaiV;
      else return false;
    } else if (flag == "--reliability") {
      out->reliability = value == "on";
    } else if (flag == "--seed") {
      out->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      return false;
    }
  }
  return out->daemons > 0;
}

/// Sends a command and returns the reply; exits on transport failure.
std::string Rpc(int fd, const std::string& cmd) {
  std::string reply;
  if (!ringdemo::SendText(fd, ringdemo::kTagCmd, cmd) ||
      !ringdemo::ReadReply(fd, &reply)) {
    std::fprintf(stderr, "contjoin_client: daemon connection lost\n");
    std::exit(1);
  }
  return reply;
}

/// Waits until every daemon reports idle in three consecutive sweeps.
/// A daemon answers status only after ingesting everything readable on
/// its sockets, so a frame flushed before one sweep is visible by the
/// next; three quiet sweeps means nothing is in flight anywhere.
void Sync(const std::vector<int>& fds) {
  int quiet_rounds = 0;
  for (int round = 0; round < 6000; ++round) {
    bool all_idle = true;
    for (int fd : fds) {
      if (Rpc(fd, "status") != "idle") all_idle = false;
    }
    quiet_rounds = all_idle ? quiet_rounds + 1 : 0;
    if (quiet_rounds >= 3) return;
    ::usleep(5000);
  }
  std::fprintf(stderr, "contjoin_client: ring did not quiesce\n");
  std::exit(1);
}

void PrintSorted(std::vector<std::string> keys) {
  std::sort(keys.begin(), keys.end());
  for (const std::string& key : keys) std::printf("%s\n", key.c_str());
  std::printf("-- drained %zu notifications --\n", keys.size());
}

int RunOracle(const ClientArgs& args) {
  core::Options options;
  options.num_nodes = args.nodes;
  options.algorithm = args.algorithm;
  options.reliability.enabled = args.reliability;
  options.seed = args.seed;
  core::ContinuousQueryNetwork net(options);
  if (!ringdemo::RegisterRingSchemas(net.catalog())) return 1;
  net.simulator()->SetWorkers(1);

  uint64_t epoch = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    std::vector<std::string> tokens = ringdemo::SplitTokens(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    if (tokens[0] == "drain") {
      std::vector<std::string> keys;
      for (size_t i = 0; i < net.num_nodes(); ++i) {
        for (const core::Notification& n : net.TakeNotifications(i)) {
          keys.push_back(ringdemo::PrintableKey(n));
        }
      }
      PrintSorted(std::move(keys));
      continue;
    }
    epoch += ringdemo::kEpochStep;
    if (epoch > net.simulator()->Now()) net.simulator()->AdvanceTo(epoch);
    if (tokens[0] == "submit" && tokens.size() >= 3) {
      std::string sql;
      for (size_t i = 2; i < tokens.size(); ++i) {
        if (i > 2) sql += ' ';
        sql += tokens[i];
      }
      auto key = net.SubmitQuery(
          static_cast<size_t>(std::atoll(tokens[1].c_str())), sql);
      if (!key.ok()) {
        std::fprintf(stderr, "submit failed: %s\n",
                     key.status().ToString().c_str());
        return 1;
      }
    } else if (tokens[0] == "insert" && tokens.size() >= 4) {
      std::vector<rel::Value> values;
      for (size_t i = 3; i < tokens.size(); ++i) {
        values.push_back(ringdemo::ParseValue(tokens[i]));
      }
      Status st = net.InsertTuple(
          static_cast<size_t>(std::atoll(tokens[1].c_str())), tokens[2],
          std::move(values));
      if (!st.ok()) {
        std::fprintf(stderr, "insert failed: %s\n", st.ToString().c_str());
        return 1;
      }
    } else {
      std::fprintf(stderr, "bad script line: %s\n", line.c_str());
      return 1;
    }
  }
  return 0;
}

int RunRing(const ClientArgs& args) {
  std::vector<int> fds;
  for (int i = 0; i < args.daemons; ++i) {
    int fd = -1;
    for (int attempt = 0; attempt < 200 && fd < 0; ++attempt) {
      fd = ringdemo::DialDaemon(
          "127.0.0.1", static_cast<uint16_t>(args.port_base + i));
      if (fd < 0) ::usleep(50000);
    }
    if (fd < 0) {
      std::fprintf(stderr, "contjoin_client: cannot reach daemon %d\n", i);
      return 1;
    }
    fds.push_back(fd);
  }

  uint64_t epoch = 0;
  int status = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    std::vector<std::string> tokens = ringdemo::SplitTokens(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    if (tokens[0] == "drain") {
      Sync(fds);
      std::vector<std::string> keys;
      for (int fd : fds) {
        std::string reply = Rpc(fd, "drain");
        size_t start = 0;
        while (start < reply.size()) {
          size_t end = reply.find('\n', start);
          if (end == std::string::npos) end = reply.size();
          if (end > start) keys.push_back(reply.substr(start, end - start));
          start = end + 1;
        }
      }
      PrintSorted(std::move(keys));
      continue;
    }
    if (tokens.size() < 2) {
      std::fprintf(stderr, "bad script line: %s\n", line.c_str());
      status = 1;
      break;
    }
    Sync(fds);
    epoch += ringdemo::kEpochStep;
    for (int fd : fds) Rpc(fd, "advance " + std::to_string(epoch));
    size_t node = static_cast<size_t>(std::atoll(tokens[1].c_str()));
    int owner = static_cast<int>(node % static_cast<size_t>(args.daemons));
    std::string reply = Rpc(fds[static_cast<size_t>(owner)], line);
    if (reply.rfind("ok", 0) != 0) {
      std::fprintf(stderr, "daemon %d rejected '%s': %s\n", owner,
                   line.c_str(), reply.c_str());
      status = 1;
      break;
    }
  }

  for (int fd : fds) {
    (void)ringdemo::SendText(fd, ringdemo::kTagCmd, "quit");
    std::string reply;
    (void)ringdemo::ReadReply(fd, &reply);
    ::close(fd);
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  ClientArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: contjoin_client [--oracle] --daemons D --nodes N "
                 "--port-base P [--algorithm sai|daiq|dait|daiv] "
                 "[--reliability on|off] [--seed S] < script\n");
    return 2;
  }
  return args.oracle ? RunOracle(args) : RunRing(args);
}
