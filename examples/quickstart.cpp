// Quickstart: a 64-node overlay, one continuous equi-join query, a handful
// of tuples, and the notifications that come back.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/engine.h"

using contjoin::core::Algorithm;
using contjoin::core::ContinuousQueryNetwork;
using contjoin::core::Options;
using contjoin::rel::RelationSchema;
using contjoin::rel::Value;
using contjoin::rel::ValueType;

int main() {
  // 1. Spin up a simulated 64-node Chord overlay running the DAI-T
  //    algorithm (the cheapest of the paper's four in steady state).
  Options options;
  options.num_nodes = 64;
  options.algorithm = Algorithm::kDaiT;
  ContinuousQueryNetwork net(options);

  // 2. Declare the schema vocabulary every node shares.
  auto st = net.catalog()->Register(RelationSchema(
      "Trades", {{"Symbol", ValueType::kString},
                 {"Price", ValueType::kDouble},
                 {"Venue", ValueType::kString}}));
  if (!st.ok()) return 1;
  st = net.catalog()->Register(RelationSchema(
      "Watchlist", {{"Symbol", ValueType::kString},
                    {"Owner", ValueType::kString}}));
  if (!st.ok()) return 1;

  // 3. Node 7 subscribes: notify me about trades of symbols on any
  //    watchlist owned by 'alice'.
  auto key = net.SubmitQuery(
      7,
      "SELECT T.Symbol, T.Price, W.Owner FROM Trades AS T, Watchlist AS W "
      "WHERE T.Symbol = W.Symbol AND W.Owner = 'alice'");
  if (!key.ok()) {
    std::printf("submit failed: %s\n", key.status().ToString().c_str());
    return 1;
  }
  std::printf("installed continuous query %s\n", key->c_str());

  // 4. Data flows in from arbitrary nodes, in arbitrary order.
  (void)net.InsertTuple(3, "Watchlist",
                        {Value::Str("ACME"), Value::Str("alice")});
  (void)net.InsertTuple(12, "Trades",
                        {Value::Str("ACME"), Value::Double(101.5),
                         Value::Str("NYSE")});
  (void)net.InsertTuple(20, "Trades",
                        {Value::Str("OTHR"), Value::Double(9.25),
                         Value::Str("LSE")});  // Not watched: no answer.
  (void)net.InsertTuple(31, "Trades",
                        {Value::Str("ACME"), Value::Double(102.25),
                         Value::Str("LSE")});

  // 5. The network cooperated to evaluate the join; node 7 has its answers.
  for (const auto& n : net.TakeNotifications(7)) {
    std::printf("notification: %s\n", n.ToString().c_str());
  }

  std::printf("\noverlay traffic:\n%s", net.stats().Report().c_str());
  return 0;
}
