// contjoin_noded: one process of a multi-process continuous-query ring.
//
// The N-node overlay is partitioned over D daemons; daemon i owns every
// node whose serial s satisfies s % D == i. Each daemon instantiates the
// full engine (ring topology and routing tables are pure functions of the
// shared options, so every process derives the identical ring), but
// application state only ever mutates at a node's owning daemon: protocol
// hops addressed to locally-owned nodes stay in the local simulator, hops
// to remotely-owned nodes are serialized by the wire codec and shipped to
// the owner over TCP (chord::TcpTransport), where they re-enter that
// simulator via Node::ApplyHop. Clients submit queries and tuples to the
// daemon owning the origin node and drain notifications from the daemon
// owning each subscriber.
//
// Scope: the typed-frame protocol paths (query indexing, tuple indexing,
// rewriting, evaluation, notification delivery, reliable-delivery
// acks/retries) all travel the wire. Simulator-only closure interactions
// (DHT fetch replies, §4.7 migration state transfer, one-time-join result
// streaming) do not; a frame carrying one is dropped and counted.
//
//   $ ./contjoin_noded --index 0 --daemons 5 --nodes 20 --port-base 9800
//       [--algorithm sai|daiq|dait|daiv] [--reliability on|off] [--seed S]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "chord/tcp_transport.h"
#include "core/codec.h"
#include "core/engine.h"
#include "ring_common.h"

using namespace contjoin;

namespace {

struct DaemonArgs {
  int index = 0;
  int daemons = 1;
  size_t nodes = 20;
  int port_base = 9800;
  core::Algorithm algorithm = core::Algorithm::kSai;
  bool reliability = true;
  uint64_t seed = 7;
};

bool ParseArgs(int argc, char** argv, DaemonArgs* out) {
  for (int i = 1; i + 1 < argc; i += 2) {
    std::string flag = argv[i];
    std::string value = argv[i + 1];
    if (flag == "--index") {
      out->index = std::atoi(value.c_str());
    } else if (flag == "--daemons") {
      out->daemons = std::atoi(value.c_str());
    } else if (flag == "--nodes") {
      out->nodes = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (flag == "--port-base") {
      out->port_base = std::atoi(value.c_str());
    } else if (flag == "--algorithm") {
      if (value == "sai") out->algorithm = core::Algorithm::kSai;
      else if (value == "daiq") out->algorithm = core::Algorithm::kDaiQ;
      else if (value == "dait") out->algorithm = core::Algorithm::kDaiT;
      else if (value == "daiv") out->algorithm = core::Algorithm::kDaiV;
      else return false;
    } else if (flag == "--reliability") {
      out->reliability = value == "on";
    } else if (flag == "--seed") {
      out->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      return false;
    }
  }
  return out->daemons > 0 && out->index >= 0 && out->index < out->daemons;
}

std::string RunCommand(core::ContinuousQueryNetwork& net,
                       const DaemonArgs& args, const std::string& line,
                       bool* quit) {
  std::vector<std::string> tokens = ringdemo::SplitTokens(line);
  if (tokens.empty()) return "err empty command";
  const std::string& cmd = tokens[0];

  if (cmd == "quit") {
    *quit = true;
    return "ok";
  }
  if (cmd == "advance") {
    if (tokens.size() != 2) return "err usage: advance <time>";
    uint64_t when = std::strtoull(tokens[1].c_str(), nullptr, 10);
    if (when > net.simulator()->Now()) net.simulator()->AdvanceTo(when);
    return "ok";
  }
  if (cmd == "drain") {
    std::string out;
    for (size_t i = static_cast<size_t>(args.index); i < net.num_nodes();
         i += static_cast<size_t>(args.daemons)) {
      for (const core::Notification& n : net.TakeNotifications(i)) {
        if (!out.empty()) out += '\n';
        out += ringdemo::PrintableKey(n);
      }
    }
    return out;
  }
  if (cmd == "submit" || cmd == "insert") {
    if (tokens.size() < 3) return "err usage: " + cmd + " <node> ...";
    size_t node = static_cast<size_t>(std::atoll(tokens[1].c_str()));
    if (node >= net.num_nodes()) return "err node out of range";
    if (node % static_cast<size_t>(args.daemons) !=
        static_cast<size_t>(args.index)) {
      return "err node " + tokens[1] + " is not owned by this daemon";
    }
    if (cmd == "submit") {
      std::string sql;
      for (size_t i = 2; i < tokens.size(); ++i) {
        if (i > 2) sql += ' ';
        sql += tokens[i];
      }
      auto key = net.SubmitQuery(node, sql);
      if (!key.ok()) return "err " + key.status().ToString();
      return "ok " + key.value();
    }
    std::vector<rel::Value> values;
    for (size_t i = 3; i < tokens.size(); ++i) {
      values.push_back(ringdemo::ParseValue(tokens[i]));
    }
    Status st = net.InsertTuple(node, tokens[2], std::move(values));
    if (!st.ok()) return "err " + st.ToString();
    return "ok";
  }
  if (cmd == "status") {
    // Filled in by the caller, which also sees the transport.
    return "err status handled by caller";
  }
  return "err unknown command '" + cmd + "'";
}

}  // namespace

int main(int argc, char** argv) {
  DaemonArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: contjoin_noded --index I --daemons D --nodes N "
                 "--port-base P [--algorithm sai|daiq|dait|daiv] "
                 "[--reliability on|off] [--seed S]\n");
    return 2;
  }

  core::Options options;
  options.num_nodes = args.nodes;
  options.algorithm = args.algorithm;
  options.reliability.enabled = args.reliability;
  options.seed = args.seed;
  core::ContinuousQueryNetwork net(options);
  if (!ringdemo::RegisterRingSchemas(net.catalog())) return 1;
  // One engine thread: socket polling, command execution and simulation
  // interleave on the main thread.
  net.simulator()->SetWorkers(1);

  chord::TcpTransportOptions topts;
  topts.listen_port = static_cast<uint16_t>(args.port_base + args.index);
  topts.self = args.index;
  for (int i = 0; i < args.daemons; ++i) {
    topts.peers.push_back("127.0.0.1:" + std::to_string(args.port_base + i));
  }
  topts.owner_of = [&args](const chord::Node& node) {
    return static_cast<int>(node.serial() %
                            static_cast<uint64_t>(args.daemons));
  };
  topts.encode_frame = core::EncodeHopFrame;
  chord::TcpTransport transport(net.network(), topts);
  net.network()->set_transport(&transport);
  if (!transport.Listen()) {
    std::fprintf(stderr, "contjoin_noded[%d]: cannot listen on port %d\n",
                 args.index, args.port_base + args.index);
    return 1;
  }

  bool quit = false;
  transport.set_message_handler([&](int fd, uint8_t tag,
                                    std::vector<uint8_t> payload) {
    if (tag == chord::TcpTransport::kTagHop) {
      wire::Reader r(payload.data(), payload.size());
      chord::NodeId to = r.Id();
      if (!r.ok()) return;
      chord::HopFrame frame;
      if (!core::DecodeHopFrame(payload.data() + 20, payload.size() - 20,
                                *net.catalog(), &frame)) {
        return;
      }
      chord::Node* node = net.network()->FindById(to);
      if (node == nullptr || !node->alive()) {
        net.network()->CountDrop(frame.cls);
        return;
      }
      net.simulator()->ScheduleSharded(
          0, node->serial(),
          [node, frame = std::move(frame)]() mutable {
            node->ApplyHop(std::move(frame));
          });
      net.simulator()->Run();
      return;
    }
    if (tag != ringdemo::kTagCmd) return;
    std::string line(payload.begin(), payload.end());
    std::string reply;
    if (line == "status") {
      bool busy =
          net.simulator()->pending_events() > 0 || !transport.idle();
      reply = busy ? "busy" : "idle";
    } else {
      reply = RunCommand(net, args, line, &quit);
    }
    transport.SendOn(fd, ringdemo::kTagReply,
                     std::vector<uint8_t>(reply.begin(), reply.end()));
  });

  while (!quit) {
    transport.Poll(/*timeout_ms=*/20);
    net.simulator()->Run();
  }
  // Push the final "ok" out before closing.
  for (int i = 0; i < 5 && !transport.idle(); ++i) transport.Poll(10);
  transport.CloseAll();
  net.network()->set_transport(nullptr);
  return 0;
}
