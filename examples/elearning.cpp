// The paper's motivating e-learning scenario (§3.2): an EDUTELLA-style
// network where research papers are inserted as they are published and
// users subscribe to authors they follow. Demonstrates predicates,
// multiple subscribers, and the §4.6 off-line delivery machinery (a
// subscriber that disconnects, misses publications, and receives the
// stored notifications on reconnection — even from a new address).
//
//   $ ./build/examples/elearning

#include <cstdio>

#include "core/engine.h"

using namespace contjoin;
using core::Algorithm;
using core::ContinuousQueryNetwork;
using core::Options;
using rel::RelationSchema;
using rel::Value;
using rel::ValueType;

namespace {

void Drain(ContinuousQueryNetwork* net, size_t node, const char* who) {
  auto notifications = net->TakeNotifications(node);
  if (notifications.empty()) {
    std::printf("  %s: (no notifications)\n", who);
    return;
  }
  for (const auto& n : notifications) {
    std::printf("  %s got: %s\n", who, n.ToString().c_str());
  }
}

}  // namespace

int main() {
  Options options;
  options.num_nodes = 128;
  options.algorithm = Algorithm::kSai;
  options.sai_strategy = core::SaiStrategy::kLowerRate;
  ContinuousQueryNetwork net(options);

  // The paper's schema: Document(Id, Title, Conference, AuthorId),
  // Authors(Id, Name, Surname).
  (void)net.catalog()->Register(RelationSchema(
      "Document", {{"Id", ValueType::kInt},
                   {"Title", ValueType::kString},
                   {"Conference", ValueType::kString},
                   {"AuthorId", ValueType::kInt}}));
  (void)net.catalog()->Register(RelationSchema(
      "Authors", {{"Id", ValueType::kInt},
                  {"Name", ValueType::kString},
                  {"Surname", ValueType::kString}}));

  // Two subscribers. Node 5 follows Smith (the paper's exact query);
  // node 9 follows everything published at ICDE.
  const size_t kFollower = 5, kIcdeFan = 9;
  auto q1 = net.SubmitQuery(
      kFollower,
      "SELECT D.Title, D.Conference FROM Document AS D, Authors AS A "
      "WHERE D.AuthorId = A.Id AND A.Surname = 'Smith'");
  auto q2 = net.SubmitQuery(
      kIcdeFan,
      "SELECT D.Title, A.Surname FROM Document AS D, Authors AS A "
      "WHERE D.AuthorId = A.Id AND D.Conference = 'ICDE'");
  if (!q1.ok() || !q2.ok()) return 1;
  std::printf("installed %s and %s\n\n", q1->c_str(), q2->c_str());

  // Author catalog entries arrive from different nodes.
  (void)net.InsertTuple(40, "Authors",
                        {Value::Int(1), Value::Str("John"),
                         Value::Str("Smith")});
  (void)net.InsertTuple(41, "Authors",
                        {Value::Int(2), Value::Str("Grace"),
                         Value::Str("Chen")});

  std::printf("Smith publishes at ICDE:\n");
  (void)net.InsertTuple(50, "Document",
                        {Value::Int(100), Value::Str("Continuous Joins"),
                         Value::Str("ICDE"), Value::Int(1)});
  Drain(&net, kFollower, "follower");
  Drain(&net, kIcdeFan, "icde-fan");

  std::printf("\nChen publishes at VLDB (matches neither subscription):\n");
  (void)net.InsertTuple(51, "Document",
                        {Value::Int(101), Value::Str("Streams"),
                         Value::Str("VLDB"), Value::Int(2)});
  Drain(&net, kFollower, "follower");
  Drain(&net, kIcdeFan, "icde-fan");

  // The follower goes off-line; Smith keeps publishing.
  std::printf("\nfollower disconnects; Smith publishes twice more...\n");
  net.DisconnectNode(kFollower);
  (void)net.InsertTuple(52, "Document",
                        {Value::Int(102), Value::Str("P2P Databases"),
                         Value::Str("SIGMOD"), Value::Int(1)});
  (void)net.InsertTuple(53, "Document",
                        {Value::Int(103), Value::Str("Overlay Indexing"),
                         Value::Str("ICDE"), Value::Int(1)});
  Drain(&net, kIcdeFan, "icde-fan");
  std::printf("  (notifications for the follower are stored at "
              "Successor(Id(n)))\n");

  // Reconnection from a different IP address: the stored notifications are
  // handed over by the Chord key-transfer rule, and the next delivery
  // reaches the new address directly.
  std::printf("\nfollower reconnects from a new address:\n");
  net.ReconnectNode(kFollower, /*new_ip=*/true);
  Drain(&net, kFollower, "follower");

  std::printf("\nSmith publishes once more (live delivery again):\n");
  (void)net.InsertTuple(54, "Document",
                        {Value::Int(104), Value::Str("Load Balancing"),
                         Value::Str("ICDE"), Value::Int(1)});
  Drain(&net, kFollower, "follower");
  Drain(&net, kIcdeFan, "icde-fan");

  std::printf("\noverlay traffic:\n%s", net.stats().Report().c_str());
  return 0;
}
