// Multi-way continuous joins (the paper's future work, implemented as the
// recursive-SAI extension): a supply-chain monitor correlating four event
// streams — orders, shipments, customs clearances and deliveries — into one
// end-to-end notification, no matter in which order the events arrive.
//
//   $ ./build/examples/supply_chain

#include <cstdio>

#include "common/rng.h"
#include "core/engine.h"

using namespace contjoin;
using core::Algorithm;
using core::ContinuousQueryNetwork;
using core::Options;
using rel::RelationSchema;
using rel::Value;
using rel::ValueType;

int main() {
  Options options;
  options.num_nodes = 128;
  options.algorithm = Algorithm::kSai;  // Multi-way rides on recursive SAI.
  ContinuousQueryNetwork net(options);

  (void)net.catalog()->Register(RelationSchema(
      "Orders", {{"OrderId", ValueType::kInt},
                 {"Customer", ValueType::kString},
                 {"Value", ValueType::kInt}}));
  (void)net.catalog()->Register(RelationSchema(
      "Shipments", {{"OrderId", ValueType::kInt},
                    {"Container", ValueType::kInt}}));
  (void)net.catalog()->Register(RelationSchema(
      "Customs", {{"Container", ValueType::kInt},
                  {"Port", ValueType::kString}}));
  (void)net.catalog()->Register(RelationSchema(
      "Deliveries", {{"Container", ValueType::kInt},
                     {"Hub", ValueType::kString}}));

  // One 4-way chain: order -> shipment -> customs -> delivery, restricted
  // to high-value orders.
  const size_t kOps = 3;
  auto q = net.SubmitMultiwayQuery(
      kOps,
      "SELECT O.OrderId, O.Customer, C.Port, D.Hub "
      "FROM Orders AS O, Shipments AS S, Customs AS C, Deliveries AS D "
      "WHERE O.OrderId = S.OrderId AND S.Container = C.Container "
      "AND C.Container = D.Container AND O.Value >= 1000");
  if (!q.ok()) {
    std::printf("%s\n", q.status().ToString().c_str());
    return 1;
  }
  std::printf("installed 4-way monitor %s\n\n", q->c_str());

  // Events arrive out of order from different nodes.
  std::printf("events (deliberately out of order):\n");
  auto insert = [&](size_t node, const char* relation,
                    std::vector<Value> values, const char* describe) {
    std::printf("  node %-3zu publishes %s\n", node, describe);
    (void)net.InsertTuple(node, relation, std::move(values));
  };
  insert(10, "Customs", {Value::Int(901), Value::Str("Rotterdam")},
         "Customs(container 901 cleared at Rotterdam)");
  insert(20, "Orders", {Value::Int(7), Value::Str("acme"), Value::Int(5000)},
         "Orders(order 7, acme, value 5000)");
  insert(30, "Deliveries", {Value::Int(901), Value::Str("Berlin-Hub")},
         "Deliveries(container 901 at Berlin-Hub)");
  insert(40, "Orders", {Value::Int(8), Value::Str("smallco"),
                        Value::Int(50)},
         "Orders(order 8, smallco, value 50)   <- below threshold");
  insert(50, "Shipments", {Value::Int(7), Value::Int(901)},
         "Shipments(order 7 in container 901)  <- completes the chain");

  std::printf("\ncorrelated notifications at the operations node:\n");
  for (const auto& n : net.TakeNotifications(kOps)) {
    std::printf("  order %s (%s) cleared %s, delivered via %s "
                "[event span %llu..%llu]\n",
                n.row[0].ToKeyString().c_str(),
                n.row[1].ToKeyString().c_str(),
                n.row[2].ToKeyString().c_str(),
                n.row[3].ToKeyString().c_str(),
                static_cast<unsigned long long>(n.earlier_pub),
                static_cast<unsigned long long>(n.later_pub));
  }

  // A second shipment for the same container chain triggers again.
  std::printf("\na late shipment re-using container 901 arrives:\n");
  insert(60, "Shipments", {Value::Int(8), Value::Int(901)},
         "Shipments(order 8 in container 901)");
  auto late = net.TakeNotifications(kOps);
  std::printf("  %zu notifications (order 8 is below the value threshold)\n",
              late.size());

  std::printf("\nstorage: %llu multi-way partial bindings parked at "
              "evaluators\n",
              static_cast<unsigned long long>(
                  net.TotalStorage().mw_partials));
  std::printf("\noverlay traffic:\n%s", net.stats().Report().c_str());
  return 0;
}
