// Shared vocabulary of the contjoin_noded / contjoin_client pair: the
// demo schema both sides register, the text command protocol spoken over
// the daemon's control channel, and small blocking-socket helpers for the
// client side (daemons use chord::TcpTransport; the client is a plain
// sequential program and blocking I/O keeps it simple).
//
// Control protocol (message tag kTagCmd, replies kTagReply, text payloads):
//   submit <node> <sql...>            -> "ok <query-key>" | "err <reason>"
//   insert <node> <relation> <v...>   -> "ok" | "err <reason>"
//   advance <virtual-time>            -> "ok"
//   status                            -> "idle" | "busy"
//   drain                             -> content keys, one per line
//   quit                              -> "ok" (daemon exits)

#ifndef CONTJOIN_EXAMPLES_RING_COMMON_H_
#define CONTJOIN_EXAMPLES_RING_COMMON_H_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "chord/tcp_transport.h"
#include "core/notification.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace ringdemo {

// Control-channel tags (kTagHop = 1 is reserved by TcpTransport).
constexpr uint8_t kTagCmd = 2;
constexpr uint8_t kTagReply = 3;

/// Virtual-time spacing between client operations: generous enough that a
/// fully backed-off reliable-retry cascade (base_timeout * 2^max_retries)
/// finishes inside one epoch, so every daemon can advance to the next
/// epoch boundary without its clock ever moving backwards.
constexpr uint64_t kEpochStep = 1u << 20;

/// The schema vocabulary of the demo ring. Every daemon and the oracle
/// register the same relations so re-parsed wire queries resolve.
inline bool RegisterRingSchemas(contjoin::rel::Catalog* catalog) {
  using contjoin::rel::RelationSchema;
  using contjoin::rel::ValueType;
  return catalog
             ->Register(RelationSchema("R", {{"A", ValueType::kInt},
                                             {"B", ValueType::kInt},
                                             {"C", ValueType::kInt}}))
             .ok() &&
         catalog
             ->Register(RelationSchema("S", {{"D", ValueType::kInt},
                                             {"E", ValueType::kInt},
                                             {"F", ValueType::kInt}}))
             .ok() &&
         catalog
             ->Register(RelationSchema("Doc",
                                       {{"Id", ValueType::kInt},
                                        {"Title", ValueType::kString}}))
             .ok() &&
         catalog
             ->Register(RelationSchema("Auth",
                                       {{"Name", ValueType::kString},
                                        {"Id", ValueType::kInt}}))
             .ok();
}

/// Integer-looking tokens become ints, everything else a string.
inline contjoin::rel::Value ParseValue(const std::string& token) {
  if (!token.empty()) {
    size_t i = token[0] == '-' ? 1 : 0;
    bool digits = i < token.size();
    for (; i < token.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(token[i]))) {
        digits = false;
        break;
      }
    }
    if (digits) {
      return contjoin::rel::Value::Int(std::strtoll(token.c_str(), nullptr, 10));
    }
  }
  return contjoin::rel::Value::Str(token);
}

/// ContentKey with its 0x1f separators made printable for line diffing.
inline std::string PrintableKey(const contjoin::core::Notification& n) {
  std::string key = n.ContentKey();
  for (char& c : key) {
    if (c == '\x1f') c = '|';
  }
  return key;
}

inline std::vector<std::string> SplitTokens(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == ' ' || c == '\t') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

// --- Blocking client-side framing ([u32 len][u8 tag][payload]) ---------------

inline int DialDaemon(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

inline bool WriteAll(int fd, const uint8_t* data, size_t size) {
  while (size > 0) {
    ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n <= 0) return false;
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

inline bool ReadAll(int fd, uint8_t* data, size_t size) {
  while (size > 0) {
    ssize_t n = ::recv(fd, data, size, 0);
    if (n <= 0) return false;
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

inline bool SendText(int fd, uint8_t tag, const std::string& text) {
  uint32_t len = static_cast<uint32_t>(text.size()) + 1;
  uint8_t header[5] = {static_cast<uint8_t>(len),
                       static_cast<uint8_t>(len >> 8),
                       static_cast<uint8_t>(len >> 16),
                       static_cast<uint8_t>(len >> 24), tag};
  return WriteAll(fd, header, sizeof(header)) &&
         WriteAll(fd, reinterpret_cast<const uint8_t*>(text.data()),
                  text.size());
}

/// Reads the next message; skips tags other than kTagReply (a client
/// socket only ever receives replies, but stay robust).
inline bool ReadReply(int fd, std::string* out) {
  while (true) {
    uint8_t header[5];
    if (!ReadAll(fd, header, sizeof(header))) return false;
    uint32_t len = static_cast<uint32_t>(header[0]) |
                   static_cast<uint32_t>(header[1]) << 8 |
                   static_cast<uint32_t>(header[2]) << 16 |
                   static_cast<uint32_t>(header[3]) << 24;
    if (len < 1) return false;
    std::vector<uint8_t> payload(len - 1);
    if (!ReadAll(fd, payload.data(), payload.size())) return false;
    if (header[4] != kTagReply) continue;
    out->assign(payload.begin(), payload.end());
    return true;
  }
}

}  // namespace ringdemo

#endif  // CONTJOIN_EXAMPLES_RING_COMMON_H_
