// Distributed stream monitoring over a sliding window: correlate intrusion
// alerts with flow records across a 256-node overlay — the kind of
// monitoring/stream-processing application the paper's introduction
// motivates. Uses DAI-Q with a sliding window, a T2-style workload would
// use DAI-V (see examples/quickstart for T1 basics).
//
//   $ ./build/examples/stream_monitoring

#include <cstdio>

#include "common/rng.h"
#include "core/engine.h"

using namespace contjoin;
using core::Algorithm;
using core::ContinuousQueryNetwork;
using core::Options;
using rel::RelationSchema;
using rel::Value;
using rel::ValueType;

int main() {
  Options options;
  options.num_nodes = 256;
  options.algorithm = Algorithm::kDaiQ;
  options.window = 200;  // Pairs further than 200 ticks apart don't match.
  options.use_jfrt = true;
  ContinuousQueryNetwork net(options);

  (void)net.catalog()->Register(RelationSchema(
      "Flows", {{"SrcIp", ValueType::kInt},
                {"DstIp", ValueType::kInt},
                {"Bytes", ValueType::kInt}}));
  (void)net.catalog()->Register(RelationSchema(
      "Alerts", {{"Ip", ValueType::kInt},
                 {"Severity", ValueType::kInt},
                 {"RuleId", ValueType::kInt}}));

  // The SOC node wants: flows whose source later (or recently) raised a
  // high-severity alert.
  const size_t kSoc = 0;
  auto q = net.SubmitQuery(
      kSoc,
      "SELECT F.SrcIp, F.DstIp, F.Bytes, A.RuleId FROM Flows AS F, "
      "Alerts AS A WHERE F.SrcIp = A.Ip AND A.Severity >= 8");
  if (!q.ok()) {
    std::printf("%s\n", q.status().ToString().c_str());
    return 1;
  }

  // Sensors all over the network publish flows and alerts.
  Rng rng(2024);
  size_t alerts = 0, flows = 0;
  for (int i = 0; i < 600; ++i) {
    size_t sensor = rng.NextBelow(net.num_nodes());
    if (rng.NextBernoulli(0.15)) {
      ++alerts;
      (void)net.InsertTuple(
          sensor, "Alerts",
          {Value::Int(static_cast<int64_t>(rng.NextBelow(40))),
           Value::Int(rng.NextInRange(1, 10)),
           Value::Int(rng.NextInRange(1000, 1040))});
    } else {
      ++flows;
      (void)net.InsertTuple(
          sensor, "Flows",
          {Value::Int(static_cast<int64_t>(rng.NextBelow(40))),
           Value::Int(static_cast<int64_t>(rng.NextBelow(1000))),
           Value::Int(rng.NextInRange(64, 1500))});
    }
  }

  auto incidents = net.TakeNotifications(kSoc);
  std::printf("sensors published %zu flows and %zu alerts\n", flows, alerts);
  std::printf("SOC received %zu correlated incidents; first five:\n",
              incidents.size());
  for (size_t i = 0; i < incidents.size() && i < 5; ++i) {
    const auto& n = incidents[i];
    std::printf("  src=%s dst=%s bytes=%s rule=%s (gap %llu ticks)\n",
                n.row[0].ToKeyString().c_str(),
                n.row[1].ToKeyString().c_str(),
                n.row[2].ToKeyString().c_str(),
                n.row[3].ToKeyString().c_str(),
                static_cast<unsigned long long>(n.later_pub - n.earlier_pub));
  }

  // Who did the work? The whole point of the two-level indexing scheme.
  auto tf = net.FilteringLoadDistribution();
  auto ts = net.StorageLoadDistribution();
  std::printf("\nfiltering load: %s\n", tf.Summary().c_str());
  std::printf("storage load:   %s\n", ts.Summary().c_str());
  std::printf("(gini near 0 = evenly spread over the %zu nodes)\n",
              net.num_nodes());

  net.PruneExpired();
  std::printf("\nafter window expiry, stored tuples: %llu\n",
              static_cast<unsigned long long>(net.TotalStorage().vltt_tuples));
  std::printf("\noverlay traffic:\n%s", net.stats().Report().c_str());
  return 0;
}
