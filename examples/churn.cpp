// Substrate demo: the Chord overlay itself under churn. Builds a ring with
// the real join protocol, runs stabilization, crashes and adds nodes, and
// shows that lookups keep resolving to the correct successors while the
// ring heals — the property the continuous-query layer relies on
// ("best-effort semantics ... leave all handling of failures to the
// underlying DHT", §3.2).
//
//   $ ./build/examples/churn

#include <cstdio>

#include "chord/network.h"
#include "common/rng.h"
#include "sim/simulator.h"

using namespace contjoin;
using chord::Network;
using chord::Node;

namespace {

double LookupAccuracy(Network* network, Rng* rng, int probes) {
  auto alive = network->AliveNodes();
  int correct = 0;
  for (int i = 0; i < probes; ++i) {
    chord::NodeId target = HashKey("probe-" + std::to_string(rng->Next()));
    Node* origin = alive[rng->NextBelow(alive.size())];
    Node* found = origin->FindSuccessor(target, sim::MsgClass::kLookup);
    if (found == network->OracleSuccessor(target)) ++correct;
  }
  return 100.0 * correct / probes;
}

}  // namespace

int main() {
  sim::Simulator simulator;
  Network network(&simulator);
  Rng rng(7);

  // Bootstrap a 48-node ring with the real protocol: every node joins
  // through find_successor and the ring converges via stabilization.
  std::printf("joining 48 nodes through the Chord protocol...\n");
  Node* seed = network.CreateAndJoin("seed", nullptr);
  for (int i = 0; i < 47; ++i) {
    network.CreateAndJoin("peer-" + std::to_string(i), seed);
    network.RunMaintenanceRound(/*fingers_per_round=*/4);
  }
  int rounds = network.StabilizeUntilConsistent(300);
  std::printf("converged after %d extra maintenance rounds; "
              "ring fully consistent: %s\n",
              rounds, network.RingIsFullyConsistent() ? "yes" : "no");
  std::printf("lookup accuracy: %.1f%%\n",
              LookupAccuracy(&network, &rng, 200));

  // Crash 8 random nodes without warning.
  std::printf("\ncrashing 8 nodes...\n");
  auto alive = network.AliveNodes();
  rng.Shuffle(&alive);
  for (int i = 0; i < 8; ++i) alive[static_cast<size_t>(i)]->Fail();
  std::printf("immediately after the crash, lookup accuracy: %.1f%%\n",
              LookupAccuracy(&network, &rng, 200));

  // Successor lists + stabilization heal the ring; heal time is the number
  // of maintenance rounds until every pointer matches the oracle again.
  rounds = network.StabilizeUntilConsistent(300);
  std::printf("heal time: %d maintenance rounds; fully consistent: %s, "
              "lookup accuracy: %.1f%%\n",
              rounds, network.RingIsFullyConsistent() ? "yes" : "no",
              LookupAccuracy(&network, &rng, 200));

  // Concurrent joins and graceful leaves.
  std::printf("\n10 joins and 5 graceful departures...\n");
  for (int i = 0; i < 10; ++i) {
    network.CreateAndJoin("late-" + std::to_string(i), seed);
    network.RunMaintenanceRound(4);
  }
  alive = network.AliveNodes();
  rng.Shuffle(&alive);
  for (int i = 0; i < 5; ++i) {
    if (alive[static_cast<size_t>(i)] != seed) {
      alive[static_cast<size_t>(i)]->LeaveGracefully();
    }
  }
  rounds = network.StabilizeUntilConsistent(300);
  std::printf("heal time: %d maintenance rounds; %zu nodes alive, "
              "fully consistent: %s, lookup accuracy: %.1f%%\n",
              rounds, network.alive_count(),
              network.RingIsFullyConsistent() ? "yes" : "no",
              LookupAccuracy(&network, &rng, 200));

  std::printf("\ntotal maintenance traffic: %llu hops\n",
              static_cast<unsigned long long>(
                  network.stats().hops(sim::MsgClass::kMaintenance)));
  return 0;
}
