// E4 — "Comparison of the various index attribute selection strategies in
// SAI" (§5.4): random vs. lower-rate vs. lower-skew vs. smaller-domain
// choices under an asymmetric workload (R tuples arrive 4x as often, R
// values are more skewed and span a larger domain than S values).
//
// Queries are installed after a warm-up stream, matching the paper's
// protocol: "the decision of where to index a query is adapted to the data
// already collected by the appropriate rewriters when a query is inserted".

#include "bench_common.h"

using namespace contjoin;

int main() {
  bench::PrintFigure(
      "E4",
      "Comparison of the various index attribute selection strategies in SAI",
      "rate-aware choice (index by the slower relation) cuts rewrite "
      "traffic; skew-aware choice spreads evaluator load (lower Gini); "
      "domain-aware choice avoids evaluators that can never fire");

  const size_t kWarmup = bench::Scaled(1500);
  const size_t kQueries = bench::Scaled(1500);
  const size_t kTuples = bench::Scaled(4000);
  bench::PrintEffective(bench::DefaultConfig().engine.num_nodes, kQueries,
                        kTuples);

  bench::PrintRow(
      "strategy\thops_per_insert\tjoin_hops_per_insert\tevaluator_gini\t"
      "evaluator_top1pct\tnotifications");
  for (auto strategy :
       {core::SaiStrategy::kRandom, core::SaiStrategy::kLowerRate,
        core::SaiStrategy::kLowerSkew, core::SaiStrategy::kSmallerDomain}) {
    workload::DriverConfig cfg = bench::DefaultConfig();
    cfg.engine.algorithm = core::Algorithm::kSai;
    cfg.engine.sai_strategy = strategy;
    // The two criteria conflict, exposing the paper's tradeoff: S is the
    // slow relation (rate strategy indexes by S -> less traffic) but its
    // values are highly skewed (skew strategy indexes by R -> better
    // evaluator balance at higher traffic).
    cfg.workload.bos_ratio = 4.0;     // R arrives 4x as often as S.
    cfg.workload.zipf_theta = 0.3;    // R values nearly uniform...
    cfg.workload.s_zipf_theta = 1.1;  // ...S values highly skewed.
    cfg.workload.s_domain = 5000;     // S also spans a smaller range.
    workload::ExperimentDriver driver(cfg);

    driver.StreamTuples(kWarmup);  // Rewriters learn rates/skews/domains.
    driver.DrainNotifications();
    auto result = bench::RunStandardPhases(&driver, kQueries, kTuples);
    LoadDistribution evaluator_load =
        driver.net().ValueFilteringLoadDistribution();

    bench::PrintRow(
        std::string(core::SaiStrategyName(strategy)) + "\t" +
        bench::Fmt(static_cast<double>(result.traffic.total_hops()) /
                   kTuples) +
        "\t" +
        bench::Fmt(static_cast<double>(result.traffic.hops(
                       sim::MsgClass::kRewrittenQuery)) /
                   kTuples) +
        "\t" + bench::Fmt(evaluator_load.Gini()) + "\t" +
        bench::Fmt(evaluator_load.TopShare(0.01)) + "\t" +
        bench::Fmt(static_cast<uint64_t>(result.notifications)));
  }
  return 0;
}
