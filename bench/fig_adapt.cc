// E-A — Adaptive load manager under value skew (extension figure, not a
// paper figure). Streams the same workload at uniform and Zipf-skewed
// value frequencies with the runtime load manager off and on, and
// reports the per-node total-filtering distribution (Gini, top-1% node
// share) plus the manager's own activity counters. The claim under test:
// with adaptation on, hot-key splitting and attribute replication pull
// the skewed run's concentration back to the uniform run's ballpark
// (within 25%), without changing what gets delivered. Emits
// machine-readable BENCH_adapt.json.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace contjoin;

namespace {

// Concentration at theta >= 0.9 must come back to within this factor of
// the uniform-workload baseline once the manager is on.
constexpr double kAcceptFactor = 1.25;

struct Cell {
  double theta;
  bool adapt;
};

struct CellResult {
  double tf_gini = 0.0;
  double tf_top1 = 0.0;
  double tf_max = 0.0;
  size_t notifications = 0;
  uint64_t directives = 0;
  uint64_t redirects = 0;
  uint64_t reships = 0;
};

CellResult RunCell(const Cell& cell, size_t num_queries, size_t num_tuples) {
  workload::DriverConfig cfg = bench::DefaultConfig();
  cfg.engine.num_nodes = bench::Scaled(128);
  // A small domain concentrates the skew in a handful of very hot values
  // — the regime the value-splitting scheme targets. The uniform cells
  // share it so the baseline sees the same collision structure.
  cfg.workload.domain = 48;
  cfg.workload.zipf_theta = cell.theta;
  if (cell.adapt) {
    cfg.engine.adapt.enabled = true;
    cfg.engine.adapt.epoch_len = 256;
    cfg.engine.adapt.hot_threshold = 24;
    cfg.engine.adapt.cool_threshold = 8;
    cfg.engine.adapt.dwell_epochs = 1;
    cfg.engine.adapt.max_split = 16;
    cfg.engine.adapt.max_replicas = 6;
  }
  workload::ExperimentDriver driver(cfg);
  bench::PhaseResult phases =
      bench::RunStandardPhases(&driver, num_queries, num_tuples);

  CellResult out;
  LoadDistribution tf = driver.net().FilteringLoadDistribution();
  out.tf_gini = tf.Gini();
  out.tf_top1 = tf.TopShare(0.01);
  out.tf_max = tf.max();
  out.notifications = phases.notifications;
  core::NodeMetrics totals = driver.net().TotalMetrics();
  out.directives = totals.adapt_directives;
  out.redirects = totals.adapt_redirects;
  out.reships = totals.adapt_reships;
  return out;
}

std::string JsonRecord(const Cell& cell, const CellResult& r) {
  std::string json = "    {";
  json += "\"theta\": " + bench::Fmt(cell.theta) + ", ";
  json += std::string("\"adapt\": ") + (cell.adapt ? "true" : "false") + ", ";
  json += "\"tf_gini\": " + bench::Fmt(r.tf_gini) + ", ";
  json += "\"tf_top1\": " + bench::Fmt(r.tf_top1) + ", ";
  json += "\"tf_max\": " + bench::Fmt(r.tf_max) + ", ";
  json += "\"notifications\": " + std::to_string(r.notifications) + ", ";
  json += "\"directives\": " + std::to_string(r.directives) + ", ";
  json += "\"redirects\": " + std::to_string(r.redirects) + ", ";
  json += "\"reships\": " + std::to_string(r.reships);
  json += "}";
  return json;
}

}  // namespace

int main() {
  bench::PrintFigure(
      "E-A (extension)",
      "Total-filtering concentration under value skew, adaptive load "
      "manager off vs on",
      "with adaptation off, Zipf-skewed values concentrate filtering on "
      "the hot values' homes; with it on, hot keys split and replicate "
      "until the skewed run's Gini and top-1% share sit within 25% of "
      "the uniform run's, while delivering the same notifications");

  const size_t kQueries = bench::Scaled(400);
  const size_t kTuples = bench::Scaled(4000);
  bench::PrintEffective(bench::Scaled(128), kQueries, kTuples);
  bench::PrintRow(
      "theta\tadapt\ttf_gini\ttf_top1\ttf_max\tnotifications\t"
      "directives\tredirects\treships");

  const std::vector<double> kThetas = {0.0, 0.9, 1.2};
  std::vector<std::string> records;
  CellResult uniform_on;   // theta 0, adapt on: the acceptance baseline.
  CellResult skewed_on;    // theta 0.9, adapt on: the acceptance subject.
  CellResult skewed_off;   // theta 0.9, adapt off: what it rescues.
  for (double theta : kThetas) {
    for (bool adapt : {false, true}) {
      Cell cell{theta, adapt};
      CellResult r = RunCell(cell, kQueries, kTuples);
      bench::PrintRow(bench::Fmt(theta) + "\t" + (adapt ? "on" : "off") +
                      "\t" + bench::Fmt(r.tf_gini) + "\t" +
                      bench::Fmt(r.tf_top1) + "\t" + bench::Fmt(r.tf_max) +
                      "\t" + std::to_string(r.notifications) + "\t" +
                      std::to_string(r.directives) + "\t" +
                      std::to_string(r.redirects) + "\t" +
                      std::to_string(r.reships));
      records.push_back(JsonRecord(cell, r));
      if (theta == 0.0 && adapt) uniform_on = r;
      if (theta == 0.9 && adapt) skewed_on = r;
      if (theta == 0.9 && !adapt) skewed_off = r;
    }
  }

  const double gini_ratio =
      uniform_on.tf_gini > 0 ? skewed_on.tf_gini / uniform_on.tf_gini : 0.0;
  const double top1_ratio =
      uniform_on.tf_top1 > 0 ? skewed_on.tf_top1 / uniform_on.tf_top1 : 0.0;
  const bool gini_ok = gini_ratio <= kAcceptFactor;
  const bool top1_ok = top1_ratio <= kAcceptFactor;
  const bool acted = skewed_on.directives > 0;
  std::printf("# theta 0.9 adapt-on vs uniform: gini ratio %s (%s), "
              "top-1%% ratio %s (%s), directives %llu\n",
              bench::Fmt(gini_ratio).c_str(), gini_ok ? "ok" : "VIOLATED",
              bench::Fmt(top1_ratio).c_str(), top1_ok ? "ok" : "VIOLATED",
              static_cast<unsigned long long>(skewed_on.directives));
  std::printf("# theta 0.9 adapt off->on: gini %s -> %s, top-1%% %s -> %s\n",
              bench::Fmt(skewed_off.tf_gini).c_str(),
              bench::Fmt(skewed_on.tf_gini).c_str(),
              bench::Fmt(skewed_off.tf_top1).c_str(),
              bench::Fmt(skewed_on.tf_top1).c_str());

  std::ofstream json("BENCH_adapt.json");
  json << "{\n  \"figure\": \"adapt\",\n  \"accept_factor\": "
       << bench::Fmt(kAcceptFactor) << ",\n  \"runs\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    json << records[i] << (i + 1 < records.size() ? ",\n" : "\n");
  }
  json << "  ],\n  \"acceptance\": {\"gini_ratio\": " << bench::Fmt(gini_ratio)
       << ", \"top1_ratio\": " << bench::Fmt(top1_ratio)
       << ", \"gini_ok\": " << (gini_ok ? "true" : "false")
       << ", \"top1_ok\": " << (top1_ok ? "true" : "false")
       << ", \"directives\": " << skewed_on.directives << "}\n}\n";
  std::printf("\nwrote BENCH_adapt.json (%zu runs)\n", records.size());

  // The smoke gate: the manager must have acted on the skewed run and
  // met the concentration acceptance, and adaptation must not change
  // what is delivered.
  if (!acted || !gini_ok || !top1_ok) return 1;
  return 0;
}
