// E14 — "Effect in filtering load distribution of increasing the network
// size" (§5.9): the same workload over growing rings. New nodes take over
// slices of the identifier space, relieving existing rewriters and
// evaluators — "when the overlay network grows, query processing becomes
// easier" (Ch. 1).

#include "bench_common.h"

using namespace contjoin;

int main() {
  bench::PrintFigure(
      "E14",
      "Effect in filtering load distribution of increasing the network size",
      "with the workload fixed, per-node mean and max filtering load fall "
      "as the network grows: new nodes absorb a share of the existing "
      "load");

  const size_t kQueries = bench::Scaled(2000);
  const size_t kTuples = bench::Scaled(4000);
  bench::PrintEffective(0, kQueries, kTuples);
  bench::PrintRow("algorithm\tnodes\tTF_mean\tTF_p99\tTF_max\tloaded_nodes");
  for (auto alg : {core::Algorithm::kSai, core::Algorithm::kDaiT,
                   core::Algorithm::kDaiV}) {
    for (size_t n : {128u, 256u, 512u, 1024u, 2048u}) {
      size_t nodes = bench::Scaled(n, 16);
      workload::DriverConfig cfg = bench::DefaultConfig();
      cfg.engine.algorithm = alg;
      cfg.engine.num_nodes = nodes;
      workload::ExperimentDriver driver(cfg);
      (void)bench::RunStandardPhases(&driver, kQueries, kTuples);
      LoadDistribution d = driver.net().FilteringLoadDistribution();
      size_t loaded = 0;
      for (double v : d.SortedDescending()) {
        if (v > 0) ++loaded;
      }
      bench::PrintRow(std::string(core::AlgorithmName(alg)) + "\t" +
                      std::to_string(nodes) + "\t" + bench::Fmt(d.mean()) +
                      "\t" + bench::Fmt(d.Percentile(99)) + "\t" +
                      bench::Fmt(d.max()) + "\t" + std::to_string(loaded));
    }
  }
  return 0;
}
