#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace contjoin::bench {

double ScaleFactor() {
  // Parsed once: a typo'd multiplier (e.g. CONTJOIN_SCALE=1O) silently
  // truncating to 1 would invalidate a whole sweep, so reject anything
  // strtod cannot consume entirely.
  static const double factor = [] {
    const char* env = std::getenv("CONTJOIN_SCALE");
    if (env == nullptr || *env == '\0') return 1.0;
    char* end = nullptr;
    double v = std::strtod(env, &end);
    if (end == env || *end != '\0') {
      std::fprintf(stderr,
                   "fatal: CONTJOIN_SCALE=\"%s\" is not a number "
                   "(trailing junk at \"%s\")\n",
                   env, end == nullptr ? env : end);
      std::exit(2);
    }
    if (v <= 0) {
      std::fprintf(stderr, "fatal: CONTJOIN_SCALE=\"%s\" must be > 0\n", env);
      std::exit(2);
    }
    return v;
  }();
  return factor;
}

size_t Scaled(size_t base, size_t min) {
  size_t v = static_cast<size_t>(static_cast<double>(base) * ScaleFactor());
  return v < min ? min : v;
}

workload::DriverConfig DefaultConfig() {
  workload::DriverConfig cfg;
  cfg.engine.num_nodes = Scaled(512, 16);
  cfg.engine.seed = 42;
  cfg.workload.seed = 42;
  cfg.workload.num_relation_pairs = 8;
  cfg.workload.attrs_per_relation = 4;
  cfg.workload.domain = 50000;
  cfg.workload.zipf_theta = 0.9;
  return cfg;
}

void PrintFigure(const std::string& id, const std::string& title,
                 const std::string& expectation) {
  std::printf("# %s: %s\n", id.c_str(), title.c_str());
  std::printf("# paper expectation: %s\n", expectation.c_str());
  std::printf("# scale factor: %.2f (set CONTJOIN_SCALE to change)\n",
              ScaleFactor());
}

void PrintEffective(size_t nodes, size_t queries, size_t tuples) {
  auto fmt = [](size_t v) {
    return v == 0 ? std::string("swept") : std::to_string(v);
  };
  std::printf("# effective: %s nodes, %s queries, %s tuples\n",
              fmt(nodes).c_str(), fmt(queries).c_str(), fmt(tuples).c_str());
}

void PrintRow(const std::string& row) { std::printf("%s\n", row.c_str()); }

std::string Fmt(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v)) && v < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

std::string Fmt(uint64_t v) { return std::to_string(v); }

PhaseResult RunStandardPhases(workload::ExperimentDriver* driver,
                              size_t num_queries, size_t num_tuples) {
  driver->InstallQueries(num_queries);
  driver->net().ResetLoadMetrics();
  (void)driver->TrafficSinceLastSnapshot();
  driver->StreamTuples(num_tuples);
  PhaseResult out;
  out.traffic = driver->TrafficSinceLastSnapshot();
  out.notifications = driver->DrainNotifications();
  return out;
}

}  // namespace contjoin::bench
