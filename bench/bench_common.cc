#include "bench_common.h"

#include <cstdlib>
#include <sstream>

namespace contjoin::bench {

double ScaleFactor() {
  const char* env = std::getenv("CONTJOIN_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

size_t Scaled(size_t base, size_t min) {
  size_t v = static_cast<size_t>(static_cast<double>(base) * ScaleFactor());
  return v < min ? min : v;
}

workload::DriverConfig DefaultConfig() {
  workload::DriverConfig cfg;
  cfg.engine.num_nodes = Scaled(512, 16);
  cfg.engine.seed = 42;
  cfg.workload.seed = 42;
  cfg.workload.num_relation_pairs = 8;
  cfg.workload.attrs_per_relation = 4;
  cfg.workload.domain = 50000;
  cfg.workload.zipf_theta = 0.9;
  return cfg;
}

void PrintFigure(const std::string& id, const std::string& title,
                 const std::string& expectation) {
  std::printf("# %s: %s\n", id.c_str(), title.c_str());
  std::printf("# paper expectation: %s\n", expectation.c_str());
  std::printf("# scale factor: %.2f (set CONTJOIN_SCALE to change)\n",
              ScaleFactor());
}

void PrintRow(const std::string& row) { std::printf("%s\n", row.c_str()); }

std::string Fmt(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v)) && v < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

std::string Fmt(uint64_t v) { return std::to_string(v); }

PhaseResult RunStandardPhases(workload::ExperimentDriver* driver,
                              size_t num_queries, size_t num_tuples) {
  driver->InstallQueries(num_queries);
  driver->net().ResetLoadMetrics();
  (void)driver->TrafficSinceLastSnapshot();
  driver->StreamTuples(num_tuples);
  PhaseResult out;
  out.traffic = driver->TrafficSinceLastSnapshot();
  out.notifications = driver->DrainNotifications();
  return out;
}

}  // namespace contjoin::bench
