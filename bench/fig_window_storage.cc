// E9 — "Effect of window size and installed queries in total evaluator
// storage load" (§5.7): the steady-state number of objects resident at
// evaluators under sliding-window expiry.

#include "bench_common.h"

using namespace contjoin;

int main() {
  bench::PrintFigure(
      "E9",
      "Effect of window size and installed queries in total evaluator "
      "storage load",
      "steady-state value-level tuple storage is proportional to the window "
      "size; rewritten-query storage grows with the installed queries and "
      "is not windowed (continuous queries persist)");

  const size_t kTuples = bench::Scaled(4000);
  bench::PrintEffective(bench::DefaultConfig().engine.num_nodes, 0,
                        kTuples);
  bench::PrintRow(
      "window\tqueries\tvltt_tuples\tvlqt_rewritten\ttotal_evaluator_TS");
  for (rel::Timestamp window : {500ull, 1000ull, 2000ull, 0ull}) {
    for (size_t q : {1000u, 2000u, 4000u}) {
      size_t queries = bench::Scaled(q);
      workload::DriverConfig cfg = bench::DefaultConfig();
      cfg.engine.algorithm = core::Algorithm::kSai;
      cfg.engine.window = window;
      workload::ExperimentDriver driver(cfg);
      driver.InstallQueries(queries);
      const size_t kSlice = 500;
      for (size_t done = 0; done < kTuples; done += kSlice) {
        driver.StreamTuples(std::min(kSlice, kTuples - done));
        driver.net().PruneExpired();
        driver.DrainNotifications();
      }
      core::NodeStorage storage = driver.net().TotalStorage();
      bench::PrintRow(
          (window == 0 ? std::string("inf") : std::to_string(window)) + "\t" +
          std::to_string(queries) + "\t" + bench::Fmt(storage.vltt_tuples) +
          "\t" + bench::Fmt(storage.vlqt_rewritten) + "\t" +
          bench::Fmt(storage.vltt_tuples + storage.vlqt_rewritten +
                     storage.daiv_entries));
    }
  }
  return 0;
}
