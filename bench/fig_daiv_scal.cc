// E16 — "Effect in filtering load distribution of DAI-V of increasing the
// network size, queries or tuples" (§5.9): DAI-V-specific scalability
// sweeps, on a T2 (expression-join) workload — the query class only DAI-V
// evaluates.

#include "bench_common.h"

using namespace contjoin;

namespace {

void RunPoint(const std::string& dimension, size_t nodes, size_t queries,
              size_t tuples) {
  workload::DriverConfig cfg = bench::DefaultConfig();
  cfg.engine.algorithm = core::Algorithm::kDaiV;
  cfg.engine.num_nodes = nodes;
  cfg.workload.t2_fraction = 0.5;  // Half plain T1, half expression joins.
  workload::ExperimentDriver driver(cfg);
  (void)bench::RunStandardPhases(&driver, queries, tuples);
  LoadDistribution d = driver.net().FilteringLoadDistribution();
  bench::PrintRow(dimension + "\t" + std::to_string(nodes) + "\t" +
                  std::to_string(queries) + "\t" + std::to_string(tuples) +
                  "\t" + bench::Fmt(d.mean()) + "\t" + bench::Fmt(d.max()) +
                  "\t" + bench::Fmt(d.Gini()));
}

}  // namespace

int main() {
  bench::PrintFigure(
      "E16",
      "Effect in filtering load distribution of DAI-V of increasing the "
      "network size, queries or tuples",
      "DAI-V scales like the other algorithms in volume, but its "
      "value-only evaluator keys make its value-level balance the worst of "
      "the four (higher gini, insensitive to network growth beyond the "
      "number of distinct join-condition values)");

  bench::PrintRow("sweep\tnodes\tqueries\ttuples\tTF_mean\tTF_max\tTF_gini");
  const size_t kN = bench::Scaled(512, 64);
  const size_t kQ = bench::Scaled(2000);
  const size_t kT = bench::Scaled(3000);
  bench::PrintEffective(kN, kQ, kT);  // Base point; each axis sweeps.
  for (size_t n : {128u, 512u, 2048u}) {
    RunPoint("network", bench::Scaled(n, 64), kQ, kT);
  }
  for (size_t q : {500u, 2000u, 8000u}) {
    RunPoint("queries", kN, bench::Scaled(q), kT);
  }
  for (size_t t : {1000u, 3000u, 9000u}) {
    RunPoint("tuples", kN, kQ, bench::Scaled(t));
  }
  return 0;
}
