// Shared infrastructure for the figure-regeneration benchmarks. Every
// binary reproduces one table/figure of the paper's evaluation chapter:
// it prints the series the figure plots plus the paper's qualitative
// expectation, so EXPERIMENTS.md can record paper-vs-measured.
//
// Scale: defaults finish in seconds on a laptop core. Set CONTJOIN_SCALE
// (e.g. 4 or 10) to scale node, query and tuple counts toward the paper's
// 10^4-node / 10^5-query operating point.

#ifndef CONTJOIN_BENCH_BENCH_COMMON_H_
#define CONTJOIN_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "workload/driver.h"

namespace contjoin::bench {

/// CONTJOIN_SCALE environment multiplier (default 1.0). Exits with a fatal
/// diagnostic when the variable is set but not a positive number.
double ScaleFactor();

/// base * ScaleFactor(), at least `min`.
size_t Scaled(size_t base, size_t min = 1);

/// Baseline configuration shared by the engine benchmarks (DESIGN.md §5):
/// 512 nodes, 8 relation pairs x 4 integer attributes, |dom| = 50 000,
/// Zipf theta = 0.9, seed 42. Individual figures override what they sweep.
workload::DriverConfig DefaultConfig();

/// Prints the standard figure banner.
void PrintFigure(const std::string& id, const std::string& title,
                 const std::string& expectation);

/// Prints the effective (post-CONTJOIN_SCALE) workload sizes as a header
/// line, so every figure records the operating point it actually ran at.
/// Pass 0 for a dimension the figure sweeps (or does not use); it prints
/// as "swept".
void PrintEffective(size_t nodes, size_t queries, size_t tuples);

/// Prints a separator-formatted row: columns joined by '\t'.
void PrintRow(const std::string& row);

/// Convenience formatting.
std::string Fmt(double v);
std::string Fmt(uint64_t v);

/// Runs the standard two-phase experiment: install `num_queries`, reset the
/// load counters, stream `num_tuples`, drain inboxes. Returns the traffic
/// delta of the streaming phase.
struct PhaseResult {
  sim::NetStats traffic;
  size_t notifications = 0;
};
PhaseResult RunStandardPhases(workload::ExperimentDriver* driver,
                              size_t num_queries, size_t num_tuples);

}  // namespace contjoin::bench

#endif  // CONTJOIN_BENCH_BENCH_COMMON_H_
