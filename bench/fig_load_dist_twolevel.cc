// E11 — "Total filtering and total storage load distribution comparison
// for the two level indexing algorithms" (§5.8): the attribute-level vs
// value-level split of the load for SAI, DAI-Q and DAI-T.

#include "bench_common.h"

using namespace contjoin;

int main() {
  bench::PrintFigure(
      "E11",
      "Total filtering and total storage load distribution comparison for "
      "the two-level indexing algorithms",
      "the attribute level concentrates load on the few rewriters (one per "
      "Relation+Attribute key); the value level spreads it over the many "
      "evaluators — the core benefit of two-level indexing");

  const size_t kQueries = bench::Scaled(2000);
  const size_t kTuples = bench::Scaled(4000);
  bench::PrintEffective(bench::DefaultConfig().engine.num_nodes, kQueries,
                        kTuples);
  bench::PrintRow(
      "algorithm\tlevel\ttotal_TF\tTF_gini\tTF_max\tloaded_nodes");
  for (auto alg : {core::Algorithm::kSai, core::Algorithm::kDaiQ,
                   core::Algorithm::kDaiT}) {
    workload::DriverConfig cfg = bench::DefaultConfig();
    cfg.engine.algorithm = alg;
    workload::ExperimentDriver driver(cfg);
    (void)bench::RunStandardPhases(&driver, kQueries, kTuples);
    for (int level = 0; level < 2; ++level) {
      LoadDistribution d = level == 0
                               ? driver.net().AttrFilteringLoadDistribution()
                               : driver.net().ValueFilteringLoadDistribution();
      size_t loaded = 0;
      for (double v : d.SortedDescending()) {
        if (v > 0) ++loaded;
      }
      bench::PrintRow(std::string(core::AlgorithmName(alg)) + "\t" +
                      (level == 0 ? "attribute" : "value") + "\t" +
                      bench::Fmt(d.total()) + "\t" + bench::Fmt(d.Gini()) +
                      "\t" + bench::Fmt(d.max()) + "\t" +
                      std::to_string(loaded));
    }
  }
  return 0;
}
