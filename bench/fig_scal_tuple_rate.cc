// E12 — "Effect in filtering load distribution of increasing the frequency
// of incoming tuples" (§5.9): load per node grows with the stream volume,
// but the distribution *shape* stays stable — the claim is scalability of
// the balancing, not constant load.

#include "bench_common.h"

using namespace contjoin;

int main() {
  bench::PrintFigure(
      "E12",
      "Effect in filtering load distribution of increasing the frequency of "
      "incoming tuples",
      "mean and max per-node load grow with the tuple volume, but the "
      "distribution shape (gini, top-shares) stays stable: the load grows "
      "gracefully instead of piling on a few nodes");

  const size_t kQueries = bench::Scaled(2000);
  bench::PrintEffective(bench::DefaultConfig().engine.num_nodes, kQueries,
                        0);
  bench::PrintRow("algorithm\ttuples\tTF_mean\tTF_max\tTF_gini\tTF_top5pct");
  for (auto alg : {core::Algorithm::kSai, core::Algorithm::kDaiQ,
                   core::Algorithm::kDaiT, core::Algorithm::kDaiV}) {
    for (size_t t : {1000u, 2000u, 4000u, 8000u}) {
      size_t tuples = bench::Scaled(t);
      workload::DriverConfig cfg = bench::DefaultConfig();
      cfg.engine.algorithm = alg;
      workload::ExperimentDriver driver(cfg);
      (void)bench::RunStandardPhases(&driver, kQueries, tuples);
      LoadDistribution d = driver.net().FilteringLoadDistribution();
      bench::PrintRow(std::string(core::AlgorithmName(alg)) + "\t" +
                      std::to_string(tuples) + "\t" + bench::Fmt(d.mean()) +
                      "\t" + bench::Fmt(d.max()) + "\t" +
                      bench::Fmt(d.Gini()) + "\t" +
                      bench::Fmt(d.TopShare(0.05)));
    }
  }
  return 0;
}
