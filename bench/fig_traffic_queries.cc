// E3 — "Effect of the number of indexed queries in network traffic"
// (§5.3.2): hops per tuple insertion as the installed-query population
// grows, per algorithm.

#include "bench_common.h"

using namespace contjoin;

int main() {
  bench::PrintFigure(
      "E3", "Effect of the number of indexed queries in network traffic",
      "traffic grows with the number of installed queries for every "
      "algorithm (more triggered rewrites per tuple), but grouping keeps "
      "the growth sub-linear and DAI-T flattens once its rewritten queries "
      "have been distributed; DAI-V stays lowest thanks to value-only "
      "grouping");

  const size_t kTuples = bench::Scaled(3000);
  bench::PrintEffective(bench::DefaultConfig().engine.num_nodes, 0,
                        kTuples);
  bench::PrintRow("algorithm\tqueries\thops_per_insert\tjoin_hops_per_insert");
  for (auto alg : {core::Algorithm::kSai, core::Algorithm::kDaiQ,
                   core::Algorithm::kDaiT, core::Algorithm::kDaiV}) {
    for (size_t q : {500u, 1000u, 2000u, 4000u, 8000u}) {
      size_t queries = bench::Scaled(q);
      workload::DriverConfig cfg = bench::DefaultConfig();
      cfg.engine.algorithm = alg;
      cfg.workload.domain = 2000;  // Repeating values: DAI-T's regime.
      cfg.workload.select_join_fraction = 0.75;
      workload::ExperimentDriver driver(cfg);
      auto result = bench::RunStandardPhases(&driver, queries, kTuples);
      bench::PrintRow(
          std::string(core::AlgorithmName(alg)) + "\t" +
          std::to_string(queries) + "\t" +
          bench::Fmt(static_cast<double>(result.traffic.total_hops()) /
                     kTuples) +
          "\t" +
          bench::Fmt(static_cast<double>(result.traffic.hops(
                         sim::MsgClass::kRewrittenQuery)) /
                     kTuples));
    }
  }
  return 0;
}
