// E15 — "Effect in filtering load distribution of increasing the network
// size for the most loaded nodes" (§5.9): zoom on the hottest nodes of the
// E14 sweep.

#include "bench_common.h"

using namespace contjoin;

int main() {
  bench::PrintFigure(
      "E15",
      "Effect in filtering load distribution of increasing the network size "
      "for the most loaded nodes",
      "the mean load of the hottest nodes falls as the network grows, but "
      "more slowly than the overall mean: hot Relation+Attribute rewriter "
      "keys stay pinned to single nodes until replication spreads them");

  const size_t kQueries = bench::Scaled(2000);
  const size_t kTuples = bench::Scaled(4000);
  bench::PrintEffective(0, kQueries, kTuples);
  bench::PrintRow(
      "nodes\ttop1_TF\ttop10_mean_TF\ttop50_mean_TF\toverall_mean_TF");
  for (size_t n : {128u, 256u, 512u, 1024u, 2048u}) {
    size_t nodes = bench::Scaled(n, 64);
    workload::DriverConfig cfg = bench::DefaultConfig();
    cfg.engine.algorithm = core::Algorithm::kDaiT;
    cfg.engine.num_nodes = nodes;
    workload::ExperimentDriver driver(cfg);
    (void)bench::RunStandardPhases(&driver, kQueries, kTuples);
    LoadDistribution d = driver.net().FilteringLoadDistribution();
    bench::PrintRow(std::to_string(nodes) + "\t" + bench::Fmt(d.max()) +
                    "\t" + bench::Fmt(d.TopKMean(10)) + "\t" +
                    bench::Fmt(d.TopKMean(50)) + "\t" +
                    bench::Fmt(d.mean()));
  }
  return 0;
}
