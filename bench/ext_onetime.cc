// A3 (extension ablation, not a paper figure) — continuous vs one-time
// evaluation: the paper's core argument against answering standing
// interests with repeated PIER-style one-time joins. A one-time join pays
// a broadcast (N-1 messages) plus a full rehash of both relations on every
// execution; a continuous query pays indexing once and then only the
// incremental per-tuple work.

#include "bench_common.h"
#include "common/rng.h"

using namespace contjoin;

int main() {
  bench::PrintFigure(
      "A3 (extension ablation)",
      "Continuous queries vs repeated PIER-style one-time joins",
      "one-time cost grows with the stored snapshot (broadcast + full "
      "rehash per execution); continuous evaluation amortizes to the "
      "incremental per-tuple cost — the motivation for the paper's "
      "algorithms. Answer sets agree on the shared snapshot");

  core::Options opts;
  opts.num_nodes = bench::Scaled(256, 32);
  bench::PrintEffective(opts.num_nodes, 1, bench::Scaled(4000));
  opts.algorithm = core::Algorithm::kSai;
  core::ContinuousQueryNetwork net(opts);
  CJ_CHECK(net.catalog()
               ->Register(rel::RelationSchema(
                   "R", {{"A", rel::ValueType::kInt},
                         {"B", rel::ValueType::kInt}}))
               .ok());
  CJ_CHECK(net.catalog()
               ->Register(rel::RelationSchema(
                   "S", {{"D", rel::ValueType::kInt},
                         {"E", rel::ValueType::kInt}}))
               .ok());

  const char* kSql = "SELECT R.A, S.D FROM R, S WHERE R.B = S.E";
  Rng rng(11);
  const int64_t kDomain = 2000;

  bench::PrintRow(
      "stored_tuples\tonetime_hops\tonetime_rows\tcontinuous_hops_per_"
      "insert");
  size_t total = 0;
  CJ_CHECK(net.SubmitQuery(0, kSql).ok());  // The continuous twin.
  for (size_t batch : {500u, 500u, 1000u, 2000u}) {
    uint64_t before_stream = net.stats().total_hops();
    for (size_t i = 0; i < bench::Scaled(batch); ++i) {
      bool is_r = rng.NextBernoulli(0.5);
      CJ_CHECK(net.InsertTuple(
                      rng.NextBelow(net.num_nodes()), is_r ? "R" : "S",
                      {rel::Value::Int(static_cast<int64_t>(
                           rng.NextBelow(1000000))),
                       rel::Value::Int(static_cast<int64_t>(
                           rng.NextBelow(kDomain)))})
                   .ok());
    }
    total += bench::Scaled(batch);
    double continuous_per_insert =
        static_cast<double>(net.stats().total_hops() - before_stream) /
        static_cast<double>(bench::Scaled(batch));
    for (size_t i = 0; i < net.num_nodes(); ++i) {
      (void)net.TakeNotifications(i);
    }

    uint64_t before_otj = net.stats().total_hops();
    auto rows = net.OneTimeJoin(1, kSql);
    CJ_CHECK(rows.ok()) << rows.status().ToString();
    uint64_t otj_hops = net.stats().total_hops() - before_otj;

    bench::PrintRow(std::to_string(total) + "\t" + bench::Fmt(otj_hops) +
                    "\t" + bench::Fmt(static_cast<uint64_t>(rows->size())) +
                    "\t" + bench::Fmt(continuous_per_insert));
  }
  return 0;
}
