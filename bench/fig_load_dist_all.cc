// E10 — "TF and TS load distribution comparison for all algorithms"
// (§5.8): per-node filtering-load and storage-load distributions of the
// four algorithms on the same workload.

#include "bench_common.h"

using namespace contjoin;

namespace {

std::string DistRow(const LoadDistribution& d) {
  return bench::Fmt(d.total()) + "\t" + bench::Fmt(d.mean()) + "\t" +
         bench::Fmt(d.Percentile(50)) + "\t" + bench::Fmt(d.Percentile(99)) +
         "\t" + bench::Fmt(d.max()) + "\t" + bench::Fmt(d.Gini()) + "\t" +
         bench::Fmt(d.TopShare(0.01));
}

}  // namespace

int main() {
  bench::PrintFigure(
      "E10", "TF and TS load distribution comparison for all algorithms",
      "the DAI algorithms spread filtering load over more nodes than SAI "
      "(two rewriters per query); DAI-V balances worst at the value level "
      "(evaluators keyed by bare values collide across attributes) but "
      "stores the least per node; DAI-T's storage is all rewritten queries, "
      "DAI-Q's all tuples");

  const size_t kQueries = bench::Scaled(2000);
  const size_t kTuples = bench::Scaled(4000);
  bench::PrintEffective(bench::DefaultConfig().engine.num_nodes, kQueries,
                        kTuples);
  bench::PrintRow(
      "algorithm\tmetric\ttotal\tmean\tp50\tp99\tmax\tgini\ttop1");
  for (auto alg : {core::Algorithm::kSai, core::Algorithm::kDaiQ,
                   core::Algorithm::kDaiT, core::Algorithm::kDaiV}) {
    workload::DriverConfig cfg = bench::DefaultConfig();
    cfg.engine.algorithm = alg;
    workload::ExperimentDriver driver(cfg);
    (void)bench::RunStandardPhases(&driver, kQueries, kTuples);
    bench::PrintRow(std::string(core::AlgorithmName(alg)) + "\tTF\t" +
                    DistRow(driver.net().FilteringLoadDistribution()));
    bench::PrintRow(std::string(core::AlgorithmName(alg)) + "\tTS\t" +
                    DistRow(driver.net().StorageLoadDistribution()));
  }
  return 0;
}
