// E-S — Open-loop serving capacity (extension figure, not a paper figure).
// Replays a seeded Poisson arrival process against each algorithm with
// backpressure (defer mode) and digest batching enabled, climbing a
// geometric tuple-rate ladder until the virtual-time p99 notification
// latency breaks the SLO. Reports, per algorithm x ring size x subscriber
// fan-out, every rung of the ladder plus the max sustainable rate — the
// highest rung whose p99 meets the SLO. Latencies here are virtual ticks
// (hop_latency = 1): rate only moves them through queueing, i.e. the
// backpressure deferrals the serving model introduces, so the knee of the
// curve is the capacity signal. Emits machine-readable BENCH_serving.json.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "faults/churn.h"
#include "serving/driver.h"

using namespace contjoin;

namespace {

// p99 time-in-flight budget, virtual ticks. Uncongested deliveries take a
// handful of routing hops; a rung fails when deferral queues stack past it.
constexpr double kSloP99 = 32.0;

// Degraded-mode budget for the scripted-churn cells. Every crash forces a
// full publish-log replay, so arrivals near a repair legitimately wait
// hundreds of ticks; against the flat SLO every churn rung would report a
// vacuous zero. The relaxed budget instead finds the rate knee where
// queueing stacks on top of the repair cost.
constexpr double kSloP99Churn = 512.0;

double SloFor(bool churn) { return churn ? kSloP99Churn : kSloP99; }

struct CellConfig {
  core::Algorithm algo;
  size_t nodes;
  size_t fanout;
  double rate;
  bool churn = false;  // Scripted churn storm during the open-loop phase.
};

struct CellOutcome {
  serving::ServingReport report;
  uint64_t max_queue = 0;  // Peak backpressure slots held, any sample.
};

CellOutcome RunCell(const CellConfig& cc) {
  serving::ServingConfig config;
  config.engine.num_nodes = cc.nodes;
  config.engine.seed = 42;
  config.engine.algorithm = cc.algo;
  config.engine.chord.hop_latency = 1;
  config.engine.reliability.enabled = true;
  config.engine.serving.fanout_batching = true;
  config.engine.serving.backpressure = true;
  config.engine.serving.high_water = 16;
  config.engine.serving.shed = false;  // Defer: latency absorbs overload.
  config.engine.serving.defer_delay = 2;
  config.workload.seed = 9;
  config.workload.domain = 400;
  config.workload.zipf_theta = 0.9;
  config.arrivals.kind = serving::ArrivalKind::kPoisson;
  config.arrivals.rate = cc.rate;
  config.num_queries = bench::Scaled(16);
  config.fanout = cc.fanout;
  config.subscriber_nodes = 4;
  config.duration = bench::Scaled(384);
  config.warmup = 64;
  config.sample_every = 32;

  // Three crashes and two joins spread across the measured phase, applied
  // at quiescent sample boundaries, so the ladder measures steady-state
  // serving through repeated ring repair.
  config.churn = cc.churn;

  serving::ServingDriver driver(config);
  CellOutcome out;
  out.report = driver.Run();
  for (const serving::QueueSample& s : out.report.samples) {
    if (s.inflight_total > out.max_queue) out.max_queue = s.inflight_total;
  }
  return out;
}

std::string JsonRecord(const CellConfig& cc, const CellOutcome& o) {
  const serving::ServingReport& r = o.report;
  std::string json = "    {";
  json += std::string("\"algo\": \"") + core::AlgorithmName(cc.algo) + "\", ";
  json += "\"nodes\": " + std::to_string(cc.nodes) + ", ";
  json += "\"fanout\": " + std::to_string(cc.fanout) + ", ";
  json += std::string("\"churn\": ") + (cc.churn ? "true" : "false") + ", ";
  json += "\"rate\": " + bench::Fmt(cc.rate) + ", ";
  json += "\"measured\": " + std::to_string(r.measured) + ", ";
  json += "\"redelivered\": " + std::to_string(r.redelivered) + ", ";
  json += "\"p50\": " + bench::Fmt(r.latency.p50()) + ", ";
  json += "\"p99\": " + bench::Fmt(r.latency.p99()) + ", ";
  json += "\"p999\": " + bench::Fmt(r.latency.p999()) + ", ";
  json += "\"max_queue\": " + std::to_string(o.max_queue) + ", ";
  json += "\"deferred\": " + std::to_string(r.traffic.deferred()) + ", ";
  json += "\"retry_amplification\": " + bench::Fmt(r.RetryAmplification()) +
          ", ";
  json += "\"slo\": " + bench::Fmt(SloFor(cc.churn)) + ", ";
  json += std::string("\"slo_met\": ") +
          (r.latency.p99() <= SloFor(cc.churn) ? "true" : "false");
  json += "}";
  return json;
}

}  // namespace

int main() {
  bench::PrintFigure(
      "E-S (extension)",
      "Max sustainable open-loop tuple rate at a fixed p99 latency SLO, "
      "per algorithm, swept over ring size and subscriber fan-out",
      "p99 time-in-flight stays flat until backpressure deferrals stack "
      "up, then climbs steeply; the sustainable rate shrinks with fan-out "
      "and the cheaper-notification algorithms sustain higher rates");

  const std::vector<size_t> kRings = {static_cast<size_t>(bench::Scaled(24)),
                                      static_cast<size_t>(bench::Scaled(48))};
  std::vector<size_t> kFanouts = {1, 4};
  // The paper's operating point has thousands of subscribers per result;
  // a >10^3 fan-out column only makes sense (and only fits in the time
  // budget) at raised scale, so it is gated on CONTJOIN_SCALE >= 4.
  if (bench::ScaleFactor() >= 4.0) kFanouts.push_back(1024);
  const std::vector<double> kRates = {0.0625, 0.125, 0.25, 0.5, 1.0, 2.0};
  const std::vector<core::Algorithm> kAlgos = {
      core::Algorithm::kSai, core::Algorithm::kDaiQ, core::Algorithm::kDaiT,
      core::Algorithm::kDaiV};

  std::printf(
      "# p99 SLO: %.1f virtual ticks (churn cells: %.1f, degraded mode — "
      "repair replay is part of the measured path)\n",
      kSloP99, kSloP99Churn);
  bench::PrintEffective(0, bench::Scaled(16), 0);
  bench::PrintRow(
      "algo\tnodes\tfanout\tchurn\trate\tmeasured\tp50\tp99\tp999\t"
      "max_queue\tdeferred\tretry_amp\tslo");

  std::vector<std::string> records;
  std::vector<std::string> summary;
  auto run_ladder = [&](core::Algorithm algo, size_t nodes, size_t fanout,
                        bool churn) {
    double max_rate = 0.0;
    for (double rate : kRates) {
      CellConfig cc{algo, nodes, fanout, rate, churn};
      CellOutcome o = RunCell(cc);
      const bool ok = o.report.latency.p99() <= SloFor(churn);
      if (ok) max_rate = rate;
      bench::PrintRow(std::string(core::AlgorithmName(algo)) + "\t" +
                      std::to_string(nodes) + "\t" + std::to_string(fanout) +
                      "\t" + (churn ? "storm" : "none") + "\t" +
                      bench::Fmt(rate) + "\t" +
                      std::to_string(o.report.measured) + "\t" +
                      bench::Fmt(o.report.latency.p50()) + "\t" +
                      bench::Fmt(o.report.latency.p99()) + "\t" +
                      bench::Fmt(o.report.latency.p999()) + "\t" +
                      std::to_string(o.max_queue) + "\t" +
                      std::to_string(o.report.traffic.deferred()) + "\t" +
                      bench::Fmt(o.report.RetryAmplification()) + "\t" +
                      (ok ? "ok" : "VIOLATED"));
      records.push_back(JsonRecord(cc, o));
      // The ladder is monotone in queueing pressure: once a rung
      // fails, higher rungs only fail harder.
      if (!ok) break;
    }
    summary.push_back(
        std::string("    {\"algo\": \"") + core::AlgorithmName(algo) +
        "\", \"nodes\": " + std::to_string(nodes) +
        ", \"fanout\": " + std::to_string(fanout) +
        std::string(", \"churn\": ") + (churn ? "true" : "false") +
        ", \"max_sustainable_rate\": " + bench::Fmt(max_rate) + "}");
    std::printf("# %s N=%zu fanout=%zu churn=%s: max sustainable rate %s\n",
                core::AlgorithmName(algo), nodes, fanout,
                churn ? "storm" : "none", bench::Fmt(max_rate).c_str());
  };
  for (core::Algorithm algo : kAlgos) {
    for (size_t nodes : kRings) {
      for (size_t fanout : kFanouts) {
        run_ladder(algo, nodes, fanout, /*churn=*/false);
      }
    }
    // Scripted-churn column: the same ladder on the small ring at default
    // fan-out, with a crash/join storm running through the measured phase.
    run_ladder(algo, kRings[0], kFanouts[0], /*churn=*/true);
  }

  std::ofstream json("BENCH_serving.json");
  json << "{\n  \"figure\": \"serving\",\n  \"slo_p99\": "
       << bench::Fmt(kSloP99) << ",\n  \"slo_p99_churn\": "
       << bench::Fmt(kSloP99Churn) << ",\n  \"runs\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    json << records[i] << (i + 1 < records.size() ? ",\n" : "\n");
  }
  json << "  ],\n  \"max_sustainable\": [\n";
  for (size_t i = 0; i < summary.size(); ++i) {
    json << summary[i] << (i + 1 < summary.size() ? ",\n" : "\n");
  }
  json << "  ]\n}\n";
  std::printf("\nwrote BENCH_serving.json (%zu runs)\n", records.size());
  return 0;
}
