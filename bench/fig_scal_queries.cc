// E13 — "Effect in filtering load distribution of increasing the number of
// indexed queries" (§5.9).

#include "bench_common.h"

using namespace contjoin;

int main() {
  bench::PrintFigure(
      "E13",
      "Effect in filtering load distribution of increasing the number of "
      "indexed queries",
      "more installed queries mean more filtering work per tuple, but the "
      "distribution shape stays stable as the value level spreads the "
      "extra rewritten queries over many evaluators");

  const size_t kTuples = bench::Scaled(3000);
  bench::PrintEffective(bench::DefaultConfig().engine.num_nodes, 0,
                        kTuples);
  bench::PrintRow("algorithm\tqueries\tTF_mean\tTF_max\tTF_gini\tTF_top5pct");
  for (auto alg : {core::Algorithm::kSai, core::Algorithm::kDaiQ,
                   core::Algorithm::kDaiT, core::Algorithm::kDaiV}) {
    for (size_t q : {500u, 1000u, 2000u, 4000u, 8000u}) {
      size_t queries = bench::Scaled(q);
      workload::DriverConfig cfg = bench::DefaultConfig();
      cfg.engine.algorithm = alg;
      workload::ExperimentDriver driver(cfg);
      (void)bench::RunStandardPhases(&driver, queries, kTuples);
      LoadDistribution d = driver.net().FilteringLoadDistribution();
      bench::PrintRow(std::string(core::AlgorithmName(alg)) + "\t" +
                      std::to_string(queries) + "\t" + bench::Fmt(d.mean()) +
                      "\t" + bench::Fmt(d.max()) + "\t" +
                      bench::Fmt(d.Gini()) + "\t" +
                      bench::Fmt(d.TopShare(0.05)));
    }
  }
  return 0;
}
