// E8 — "Effect of window size and installed queries in total evaluator
// filtering load" (§5.7): under sliding-window semantics, stored
// value-level state is bounded by the window, so the total filtering work
// evaluators perform grows with both the window size and the installed
// query population.

#include "bench_common.h"

using namespace contjoin;

namespace {

uint64_t TotalEvaluatorFiltering(size_t queries, rel::Timestamp window,
                                 size_t tuples) {
  workload::DriverConfig cfg = bench::DefaultConfig();
  cfg.engine.algorithm = core::Algorithm::kDaiQ;
  cfg.engine.window = window;
  workload::ExperimentDriver driver(cfg);
  driver.InstallQueries(queries);
  driver.net().ResetLoadMetrics();
  // Stream in slices, pruning expired state as time advances (the window
  // is measured in virtual ticks; one tick per insertion).
  const size_t kSlice = 500;
  for (size_t done = 0; done < tuples; done += kSlice) {
    driver.StreamTuples(std::min(kSlice, tuples - done));
    driver.net().PruneExpired();
    driver.DrainNotifications();
  }
  return driver.net().TotalMetrics().filter_ops_value;
}

}  // namespace

int main() {
  bench::PrintFigure(
      "E8",
      "Effect of window size and installed queries in total evaluator "
      "filtering load",
      "total evaluator filtering load grows with the window (more stored "
      "tuples to examine) and with the number of installed queries (more "
      "rewritten queries to check); the two effects compound");

  const size_t kTuples = bench::Scaled(4000);
  bench::PrintEffective(bench::DefaultConfig().engine.num_nodes, 0,
                        kTuples);
  bench::PrintRow("window\tqueries\ttotal_evaluator_filter_ops");
  for (rel::Timestamp window : {500ull, 1000ull, 2000ull, 0ull}) {
    for (size_t q : {1000u, 2000u, 4000u}) {
      size_t queries = bench::Scaled(q);
      uint64_t ops = TotalEvaluatorFiltering(queries, window, kTuples);
      bench::PrintRow(
          (window == 0 ? std::string("inf") : std::to_string(window)) + "\t" +
          std::to_string(queries) + "\t" + bench::Fmt(ops));
    }
  }
  return 0;
}
