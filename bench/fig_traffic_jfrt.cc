// E2 — "Traffic cost and JFRT effect" (§5.3.1):
// overlay hops per tuple insertion for the four algorithms, with and
// without the join fingers routing table.

#include "bench_common.h"

using namespace contjoin;

int main() {
  bench::PrintFigure(
      "E2", "Traffic cost and JFRT effect",
      "DAI-V needs the fewest tuple-index and join hops (attribute-level "
      "tuple indexing only, value-only grouping); DAI-T resends fewer "
      "rewritten queries than SAI/DAI-Q; the JFRT cuts reindexing traffic "
      "toward one hop per join message for every algorithm. SAI and DAI-T "
      "group identical rewritten queries, so on repeating values they also "
      "deliver fewer duplicate-content notifications than DAI-Q/DAI-V");

  const size_t kQueries = bench::Scaled(1500);
  const size_t kWarmup = bench::Scaled(2000);
  const size_t kTuples = bench::Scaled(2000);
  bench::PrintEffective(bench::DefaultConfig().engine.num_nodes, kQueries,
                        kTuples);
  bench::PrintRow(
      "algorithm\tjfrt\thops_per_insert\ttuple_index\tjoin\tnotification");
  for (auto alg : {core::Algorithm::kSai, core::Algorithm::kDaiQ,
                   core::Algorithm::kDaiT, core::Algorithm::kDaiV}) {
    for (bool jfrt : {false, true}) {
      workload::DriverConfig cfg = bench::DefaultConfig();
      cfg.engine.algorithm = alg;
      cfg.engine.use_jfrt = jfrt;
      // Steady-state measurement: values repeat (modest domain) and most
      // queries project their join attributes, the regime where DAI-T's
      // never-reindex-twice rule and the JFRT pay off.
      cfg.workload.domain = 2000;
      cfg.workload.select_join_fraction = 0.75;
      workload::ExperimentDriver driver(cfg);
      driver.InstallQueries(kQueries);
      driver.StreamTuples(kWarmup);  // Reach steady state first.
      driver.DrainNotifications();
      driver.net().ResetLoadMetrics();
      (void)driver.TrafficSinceLastSnapshot();
      driver.StreamTuples(kTuples);
      bench::PhaseResult result;
      result.traffic = driver.TrafficSinceLastSnapshot();
      result.notifications = driver.DrainNotifications();
      double per_insert =
          static_cast<double>(result.traffic.total_hops()) / kTuples;
      bench::PrintRow(
          std::string(core::AlgorithmName(alg)) + "\t" +
          (jfrt ? "on" : "off") + "\t" + bench::Fmt(per_insert) + "\t" +
          bench::Fmt(static_cast<double>(
                         result.traffic.hops(sim::MsgClass::kTupleIndex)) /
                     kTuples) +
          "\t" +
          bench::Fmt(static_cast<double>(result.traffic.hops(
                         sim::MsgClass::kRewrittenQuery)) /
                     kTuples) +
          "\t" +
          bench::Fmt(static_cast<double>(result.traffic.hops(
                         sim::MsgClass::kNotification)) /
                     kTuples));
    }
  }
  return 0;
}
