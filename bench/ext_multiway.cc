// A1 (extension ablation, not a paper figure) — multi-way joins via
// recursive SAI: traffic and load as the join width m grows. The paper
// names multi-way joins as future work; the authors later published the
// approach reproduced here.

#include <sstream>

#include "bench_common.h"
#include "common/rng.h"

using namespace contjoin;

namespace {

struct MwResult {
  double hops_per_insert;
  double join_hops_per_insert;
  size_t notifications;
  uint64_t partials;
  double tf_gini;
};

MwResult Run(int m, size_t queries, size_t tuples) {
  core::Options opts;
  opts.num_nodes = bench::Scaled(512, 64);
  opts.algorithm = core::Algorithm::kSai;
  opts.seed = 42;
  core::ContinuousQueryNetwork net(opts);
  const int kAttrs = 3;
  std::vector<std::string> rels;
  for (int i = 0; i < m; ++i) {
    rels.push_back("T" + std::to_string(i));
    std::vector<rel::Attribute> attrs;
    for (int a = 0; a < kAttrs; ++a) {
      attrs.push_back({"a" + std::to_string(a), rel::ValueType::kInt});
    }
    CJ_CHECK(net.catalog()
                 ->Register(rel::RelationSchema(rels.back(), attrs))
                 .ok());
  }
  Rng rng(7);
  const int64_t kDomain = 400;
  for (size_t i = 0; i < queries; ++i) {
    std::ostringstream sql;
    sql << "SELECT ";
    for (int r = 0; r < m; ++r) {
      if (r > 0) sql << ", ";
      sql << rels[static_cast<size_t>(r)] << ".a" << rng.NextBelow(kAttrs);
    }
    sql << " FROM ";
    for (int r = 0; r < m; ++r) {
      if (r > 0) sql << ", ";
      sql << rels[static_cast<size_t>(r)];
    }
    sql << " WHERE ";
    for (int r = 1; r < m; ++r) {
      if (r > 1) sql << " AND ";
      sql << rels[static_cast<size_t>(r - 1)] << ".a"
          << rng.NextBelow(kAttrs) << " = " << rels[static_cast<size_t>(r)]
          << ".a" << rng.NextBelow(kAttrs);
    }
    CJ_CHECK(net.SubmitMultiwayQuery(rng.NextBelow(net.num_nodes()),
                                     sql.str())
                 .ok());
  }
  net.ResetLoadMetrics();
  size_t notifications = 0;
  for (size_t i = 0; i < tuples; ++i) {
    std::string relation = rels[rng.NextBelow(rels.size())];
    std::vector<rel::Value> values;
    for (int a = 0; a < kAttrs; ++a) {
      values.push_back(rel::Value::Int(
          static_cast<int64_t>(rng.NextBelow(kDomain))));
    }
    CJ_CHECK(net.InsertTuple(rng.NextBelow(net.num_nodes()), relation,
                             std::move(values))
                 .ok());
    if (i % 500 == 0) {
      for (size_t n = 0; n < net.num_nodes(); ++n) {
        notifications += net.TakeNotifications(n).size();
      }
    }
  }
  for (size_t n = 0; n < net.num_nodes(); ++n) {
    notifications += net.TakeNotifications(n).size();
  }
  MwResult out;
  out.hops_per_insert =
      static_cast<double>(net.stats().total_hops()) / tuples;
  out.join_hops_per_insert =
      static_cast<double>(net.stats().hops(sim::MsgClass::kRewrittenQuery)) /
      tuples;
  out.notifications = notifications;
  out.partials = net.TotalStorage().mw_partials;
  out.tf_gini = net.FilteringLoadDistribution().Gini();
  return out;
}

}  // namespace

int main() {
  bench::PrintFigure(
      "A1 (extension ablation)",
      "Multi-way continuous joins: cost vs join width m",
      "per-insert traffic grows with m (longer rewrite chains, more "
      "partials), while the value level keeps spreading the filtering load; "
      "answers stay exactly the centralized oracle's (property-tested)");

  const size_t kQueries = bench::Scaled(100);
  const size_t kTuples = bench::Scaled(1200);
  bench::PrintEffective(bench::Scaled(512, 64), kQueries, kTuples);
  bench::PrintRow(
      "m\thops_per_insert\tjoin_hops_per_insert\tpartials_stored\t"
      "notifications\tTF_gini");
  for (int m : {2, 3, 4, 5}) {
    MwResult r = Run(m, kQueries, kTuples);
    bench::PrintRow(std::to_string(m) + "\t" +
                    bench::Fmt(r.hops_per_insert) + "\t" +
                    bench::Fmt(r.join_hops_per_insert) + "\t" +
                    bench::Fmt(r.partials) + "\t" +
                    bench::Fmt(static_cast<uint64_t>(r.notifications)) +
                    "\t" + bench::Fmt(r.tf_gini));
  }
  return 0;
}
