// E5 — "Effect of the bos ratio" (§5.5): varying the arrival-rate ratio
// between the two relation streams (our reading of the thesis' "bos
// ratio"; see DESIGN.md §4). SAI with the rate-aware strategy benefits
// most: as the streams grow asymmetric, indexing by the slow relation
// triggers ever fewer rewrites. Double-indexing algorithms pay for both
// streams regardless.

#include "bench_common.h"

using namespace contjoin;

namespace {

double JoinHopsPerInsert(core::Algorithm alg, core::SaiStrategy strategy,
                         double bos, size_t warmup, size_t queries,
                         size_t tuples) {
  workload::DriverConfig cfg = bench::DefaultConfig();
  cfg.engine.algorithm = alg;
  cfg.engine.sai_strategy = strategy;
  cfg.workload.bos_ratio = bos;
  workload::ExperimentDriver driver(cfg);
  driver.StreamTuples(warmup);
  driver.DrainNotifications();
  auto result = bench::RunStandardPhases(&driver, queries, tuples);
  return static_cast<double>(
             result.traffic.hops(sim::MsgClass::kRewrittenQuery)) /
         static_cast<double>(tuples);
}

}  // namespace

int main() {
  bench::PrintFigure(
      "E5", "Effect of the bos ratio",
      "as the R:S arrival ratio grows, SAI(lower-rate) indexes queries by "
      "the slow relation and its rewrite traffic falls; SAI(random) and the "
      "DAI algorithms keep paying for the fast stream");

  const size_t kWarmup = bench::Scaled(1000);
  const size_t kQueries = bench::Scaled(1500);
  const size_t kTuples = bench::Scaled(3000);
  bench::PrintEffective(bench::DefaultConfig().engine.num_nodes, kQueries,
                        kTuples);

  bench::PrintRow(
      "bos_ratio\tSAI_random\tSAI_lower_rate\tDAI_Q\tDAI_T\tDAI_V");
  for (double bos : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    std::string row = bench::Fmt(bos);
    row += "\t" + bench::Fmt(JoinHopsPerInsert(
                      core::Algorithm::kSai, core::SaiStrategy::kRandom, bos,
                      kWarmup, kQueries, kTuples));
    row += "\t" + bench::Fmt(JoinHopsPerInsert(
                      core::Algorithm::kSai, core::SaiStrategy::kLowerRate,
                      bos, kWarmup, kQueries, kTuples));
    row += "\t" + bench::Fmt(JoinHopsPerInsert(
                      core::Algorithm::kDaiQ, core::SaiStrategy::kRandom, bos,
                      kWarmup, kQueries, kTuples));
    row += "\t" + bench::Fmt(JoinHopsPerInsert(
                      core::Algorithm::kDaiT, core::SaiStrategy::kRandom, bos,
                      kWarmup, kQueries, kTuples));
    row += "\t" + bench::Fmt(JoinHopsPerInsert(
                      core::Algorithm::kDaiV, core::SaiStrategy::kRandom, bos,
                      kWarmup, kQueries, kTuples));
    bench::PrintRow(row);
  }
  return 0;
}
