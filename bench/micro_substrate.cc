// M1 — google-benchmark micro-benchmarks of the substrate hot paths: SHA-1
// identifier derivation, 160-bit ring arithmetic, Chord lookups, local
// table operations, Zipf sampling and query parsing. Not a paper figure;
// establishes that the simulator is fast enough for the figure sweeps.

#include <benchmark/benchmark.h>

#include "chord/network.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "core/tables.h"
#include "query/parser.h"
#include "sim/simulator.h"

using namespace contjoin;

namespace {

void BM_Sha1HashKey(benchmark::State& state) {
  std::string key = "Document+AuthorId+123456";
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashKey(key));
  }
}
BENCHMARK(BM_Sha1HashKey);

void BM_Uint160Add(benchmark::State& state) {
  Uint160 a = HashKey("a"), b = HashKey("b");
  for (auto _ : state) {
    benchmark::DoNotOptimize(a + b);
  }
}
BENCHMARK(BM_Uint160Add);

void BM_Uint160InOpenClosed(benchmark::State& state) {
  Uint160 a = HashKey("a"), b = HashKey("b"), x = HashKey("x");
  for (auto _ : state) {
    benchmark::DoNotOptimize(x.InOpenClosed(a, b));
  }
}
BENCHMARK(BM_Uint160InOpenClosed);

void BM_ChordLookup(benchmark::State& state) {
  sim::Simulator simulator;
  chord::Network network(&simulator);
  auto nodes = network.BuildIdealRing(static_cast<size_t>(state.range(0)));
  Rng rng(1);
  size_t i = 0;
  for (auto _ : state) {
    chord::Node* origin = nodes[rng.NextBelow(nodes.size())];
    benchmark::DoNotOptimize(origin->FindSuccessor(
        HashKey("k" + std::to_string(i++)), sim::MsgClass::kLookup));
  }
  state.counters["avg_hops"] = static_cast<double>(
      network.stats().total_hops() / std::max<uint64_t>(1, state.iterations()));
}
BENCHMARK(BM_ChordLookup)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(100000, 0.9);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(&rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_ParseQuery(benchmark::State& state) {
  rel::Catalog catalog;
  (void)catalog.Register(rel::RelationSchema(
      "R", {{"A", rel::ValueType::kInt}, {"B", rel::ValueType::kInt}}));
  (void)catalog.Register(rel::RelationSchema(
      "S", {{"D", rel::ValueType::kInt}, {"E", rel::ValueType::kInt}}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(query::ParseQuery(
        "SELECT R.A, S.D FROM R, S WHERE 2*R.B + 1 = S.E AND R.A > 5",
        catalog));
  }
}
BENCHMARK(BM_ParseQuery);

void BM_VlttInsertFind(benchmark::State& state) {
  core::ValueLevelTupleTable vltt;
  Rng rng(5);
  uint64_t i = 0;
  for (auto _ : state) {
    std::string value = std::to_string(rng.NextBelow(1000));
    vltt.Insert("R+a0", value,
                core::StoredTuple{
                    std::make_shared<const rel::Tuple>(
                        "R", std::vector<rel::Value>{rel::Value::Int(1)},
                        i, i),
                    0});
    benchmark::DoNotOptimize(vltt.Find("R+a0", value));
    ++i;
  }
}
BENCHMARK(BM_VlttInsertFind);

}  // namespace

BENCHMARK_MAIN();
