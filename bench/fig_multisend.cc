// E1 — thesis Figure 4.8 / §5.2 "Evaluation of the API":
// recursive vs. iterative design for the multisend function.
//
// For k identifiers over an N-node ring, both designs are O(k log N), but
// the recursive batch shares the clockwise path and wins in practice.

#include <vector>

#include "bench_common.h"
#include "chord/network.h"
#include "common/rng.h"
#include "sim/simulator.h"

using namespace contjoin;

namespace {

struct TrialResult {
  double recursive_hops;
  double iterative_hops;
};

TrialResult Measure(size_t n, size_t k, int trials) {
  sim::Simulator simulator;
  chord::Network network(&simulator);
  auto nodes = network.BuildIdealRing(n);
  Rng rng(17);

  auto make_batch = [&](int trial) {
    std::vector<chord::AppMessage> batch;
    for (size_t i = 0; i < k; ++i) {
      chord::AppMessage msg;
      msg.target = HashKey("t-" + std::to_string(trial) + "-" +
                           std::to_string(i));
      msg.cls = sim::MsgClass::kTupleIndex;
      batch.push_back(msg);
    }
    return batch;
  };

  uint64_t rec = 0, iter = 0;
  for (int t = 0; t < trials; ++t) {
    chord::Node* origin = nodes[rng.NextBelow(nodes.size())];
    uint64_t before = network.stats().total_hops();
    origin->Multisend(make_batch(t), sim::MsgClass::kTupleIndex);
    simulator.Run();
    rec += network.stats().total_hops() - before;

    before = network.stats().total_hops();
    origin->MultisendIterative(make_batch(t));
    simulator.Run();
    iter += network.stats().total_hops() - before;
  }
  return {static_cast<double>(rec) / trials,
          static_cast<double>(iter) / trials};
}

}  // namespace

int main() {
  bench::PrintFigure(
      "E1 (thesis Fig. 4.8)",
      "Recursive vs. iterative design for the multisend function",
      "same O(k log N) bound; the recursive design is significantly "
      "cheaper in practice and the gap grows with k");
  bench::PrintEffective(0, 0, 0);

  bench::PrintRow("N\tk\trecursive_hops\titerative_hops\tratio");
  const int kTrials = 25;
  for (size_t n : {256u, 1024u, 4096u}) {
    size_t scaled_n = bench::Scaled(n, 16);
    for (size_t k : {4u, 8u, 16u, 32u, 64u, 128u}) {
      TrialResult r = Measure(scaled_n, k, kTrials);
      bench::PrintRow(std::to_string(scaled_n) + "\t" + std::to_string(k) +
                      "\t" + bench::Fmt(r.recursive_hops) + "\t" +
                      bench::Fmt(r.iterative_hops) + "\t" +
                      bench::Fmt(r.iterative_hops /
                                 (r.recursive_hops > 0 ? r.recursive_hops
                                                       : 1.0)));
    }
  }
  return 0;
}
