// T-P — Parallel simulator-core throughput (infrastructure figure, not a
// paper figure). Streams tuple waves (InsertTupleWave: one virtual-time
// epoch, many same-timestamp insertions) through the engine and reports
// wall-clock events/sec and tuples/sec for worker counts {1,2,4,8} at ring
// sizes {512, 2048, 10000}, plus a coalescing on/off pair at the middle
// size. The determinism contract means every cell of the sweep produces
// bit-identical protocol traffic — only the wall clock moves. Emits
// machine-readable BENCH_throughput.json.
//
// Wall-clock timing is deliberate and confined to bench/: src/ stays free
// of real-time reads so simulation stays reproducible.

#include <chrono>
#include <fstream>
#include <thread>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "workload/driver.h"

using namespace contjoin;

namespace {

struct RunConfig {
  size_t num_nodes;
  int threads;
  bool coalesce;
};

struct RunOutcome {
  uint64_t events = 0;
  size_t tuples = 0;
  uint64_t parallel_batches = 0;
  size_t notifications = 0;
  double seconds = 0;

  double EventsPerSec() const { return seconds > 0 ? events / seconds : 0; }
  double TuplesPerSec() const { return seconds > 0 ? tuples / seconds : 0; }
};

RunOutcome RunOne(const RunConfig& rc, size_t num_queries, size_t num_waves,
                  size_t wave_width) {
  workload::DriverConfig cfg = bench::DefaultConfig();
  cfg.engine.num_nodes = rc.num_nodes;
  cfg.engine.chord.coalesce = rc.coalesce;
  workload::ExperimentDriver driver(cfg);
  driver.InstallQueries(num_queries);

  core::ContinuousQueryNetwork& net = driver.net();
  net.simulator()->SetWorkers(rc.threads);

  Rng placement(rc.num_nodes * 31 + 7);
  const uint64_t events_before = net.simulator()->total_events_run();
  const uint64_t batches_before = net.simulator()->parallel_batches_run();

  RunOutcome out;
  auto t0 = std::chrono::steady_clock::now();
  for (size_t w = 0; w < num_waves; ++w) {
    std::vector<std::pair<size_t, std::string>> origins;
    std::vector<std::vector<rel::Value>> rows;
    origins.reserve(wave_width);
    rows.reserve(wave_width);
    for (size_t i = 0; i < wave_width; ++i) {
      auto [relation, values] = driver.gen().NextTuple();
      origins.emplace_back(placement.NextBelow(rc.num_nodes), relation);
      rows.push_back(std::move(values));
    }
    CJ_CHECK(net.InsertTupleWave(origins, std::move(rows)).ok());
  }
  auto t1 = std::chrono::steady_clock::now();

  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.events = net.simulator()->total_events_run() - events_before;
  out.tuples = num_waves * wave_width;
  out.parallel_batches =
      net.simulator()->parallel_batches_run() - batches_before;
  out.notifications = driver.DrainNotifications();
  return out;
}

std::string JsonRecord(const RunConfig& rc, const RunOutcome& o) {
  std::string json = "    {";
  json += "\"nodes\": " + std::to_string(rc.num_nodes) + ", ";
  json += "\"threads\": " + std::to_string(rc.threads) + ", ";
  json += std::string("\"coalesce\": ") + (rc.coalesce ? "true" : "false") +
          ", ";
  json += "\"events\": " + std::to_string(o.events) + ", ";
  json += "\"tuples\": " + std::to_string(o.tuples) + ", ";
  json += "\"parallel_batches\": " + std::to_string(o.parallel_batches) +
          ", ";
  json += "\"notifications\": " + std::to_string(o.notifications) + ", ";
  json += "\"seconds\": " + bench::Fmt(o.seconds) + ", ";
  json += "\"events_per_sec\": " + bench::Fmt(o.EventsPerSec()) + ", ";
  json += "\"tuples_per_sec\": " + bench::Fmt(o.TuplesPerSec());
  json += "}";
  return json;
}

}  // namespace

int main() {
  bench::PrintFigure(
      "T-P (infrastructure)",
      "Simulator-core throughput vs worker threads and ring size "
      "(per-destination coalescing pair at N=2048)",
      "events/sec rises with the worker count while every cell stays "
      "bit-identical in protocol traffic; coalescing removes per-message "
      "transmit events and lifts tuples/sec further");

  const size_t kQueries = bench::Scaled(300);
  const size_t kWaves = bench::Scaled(8);
  const std::vector<size_t> kRings = {512, 2048, 10000};
  const std::vector<int> kThreads = {1, 2, 4, 8};

  bench::PrintEffective(0, kQueries, 0);
  // Worker counts beyond the host's core budget only measure barrier
  // overhead, so record the budget next to the numbers it explains.
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("# hardware_concurrency: %u\n", hw);
  std::vector<std::string> records;
  bench::PrintRow(
      "nodes\tthreads\tcoalesce\ttuples\tevents\tparallel_batches\t"
      "seconds\tevents_per_sec\ttuples_per_sec\tnotifications");

  auto run_and_report = [&](const RunConfig& rc) {
    // Wide waves keep each virtual-time epoch's batch large enough for the
    // worker pool to amortize its barrier; width grows with the ring so
    // bigger rings expose more parallelism, as a real deployment would.
    size_t wave_width = std::max<size_t>(64, rc.num_nodes / 4);
    RunOutcome o = RunOne(rc, kQueries, kWaves, wave_width);
    bench::PrintRow(std::to_string(rc.num_nodes) + "\t" +
                    std::to_string(rc.threads) + "\t" +
                    (rc.coalesce ? "on" : "off") + "\t" +
                    std::to_string(o.tuples) + "\t" +
                    std::to_string(o.events) + "\t" +
                    std::to_string(o.parallel_batches) + "\t" +
                    bench::Fmt(o.seconds) + "\t" +
                    bench::Fmt(o.EventsPerSec()) + "\t" +
                    bench::Fmt(o.TuplesPerSec()) + "\t" +
                    std::to_string(o.notifications));
    records.push_back(JsonRecord(rc, o));
  };

  for (size_t n : kRings) {
    for (int t : kThreads) {
      run_and_report(RunConfig{n, t, /*coalesce=*/false});
    }
  }
  // Coalescing pair: same workload, batched transmissions.
  for (int t : {1, 8}) {
    run_and_report(RunConfig{2048, t, /*coalesce=*/true});
  }

  std::ofstream json("BENCH_throughput.json");
  json << "{\n  \"figure\": \"throughput\",\n  \"hardware_concurrency\": "
       << hw << ",\n  \"runs\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    json << records[i] << (i + 1 < records.size() ? ",\n" : "\n");
  }
  json << "  ]\n}\n";
  std::printf("\nwrote BENCH_throughput.json (%zu runs)\n", records.size());
  return 0;
}
