// M2 — google-benchmark end-to-end engine throughput: wall-clock cost of
// one tuple insertion (full cascade: indexing, rewriting, evaluation,
// delivery) per algorithm, and of query submission. Not a paper figure;
// documents the simulator's real-time capacity.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/engine.h"

using namespace contjoin;

namespace {

std::unique_ptr<core::ContinuousQueryNetwork> MakeLoadedNet(
    core::Algorithm alg, size_t queries) {
  core::Options opts;
  opts.num_nodes = 256;
  opts.algorithm = alg;
  auto net = std::make_unique<core::ContinuousQueryNetwork>(opts);
  CJ_CHECK(net->catalog()
               ->Register(rel::RelationSchema(
                   "R", {{"A", rel::ValueType::kInt},
                         {"B", rel::ValueType::kInt}}))
               .ok());
  CJ_CHECK(net->catalog()
               ->Register(rel::RelationSchema(
                   "S", {{"D", rel::ValueType::kInt},
                         {"E", rel::ValueType::kInt}}))
               .ok());
  Rng rng(1);
  for (size_t i = 0; i < queries; ++i) {
    CJ_CHECK(net->SubmitQuery(rng.NextBelow(net->num_nodes()),
                              "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
                 .ok());
  }
  return net;
}

void BM_InsertTuple(benchmark::State& state) {
  auto alg = static_cast<core::Algorithm>(state.range(0));
  auto net = MakeLoadedNet(alg, 100);
  Rng rng(2);
  int64_t i = 0;
  for (auto _ : state) {
    bool is_r = (i & 1) == 0;
    benchmark::DoNotOptimize(net->InsertTuple(
        rng.NextBelow(net->num_nodes()), is_r ? "R" : "S",
        {rel::Value::Int(i),
         rel::Value::Int(static_cast<int64_t>(rng.NextBelow(100000)))}));
    ++i;
    if (i % 4096 == 0) {
      for (size_t n = 0; n < net->num_nodes(); ++n) {
        (void)net->TakeNotifications(n);
      }
    }
  }
  state.SetLabel(core::AlgorithmName(alg));
}
BENCHMARK(BM_InsertTuple)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_SubmitQuery(benchmark::State& state) {
  auto net = MakeLoadedNet(core::Algorithm::kDaiT, 0);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net->SubmitQuery(
        rng.NextBelow(net->num_nodes()),
        "SELECT R.A, S.D FROM R, S WHERE R.B = S.E"));
  }
}
BENCHMARK(BM_SubmitQuery);

void BM_OneTimeJoin(benchmark::State& state) {
  auto net = MakeLoadedNet(core::Algorithm::kSai, 0);
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    bool is_r = rng.NextBernoulli(0.5);
    CJ_CHECK(net->InsertTuple(
                    rng.NextBelow(net->num_nodes()), is_r ? "R" : "S",
                    {rel::Value::Int(i),
                     rel::Value::Int(static_cast<int64_t>(
                         rng.NextBelow(500)))})
                 .ok());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net->OneTimeJoin(
        rng.NextBelow(net->num_nodes()),
        "SELECT R.A, S.D FROM R, S WHERE R.B = S.E"));
  }
}
BENCHMARK(BM_OneTimeJoin);

}  // namespace

BENCHMARK_MAIN();
