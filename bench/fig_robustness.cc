// E-R — Robustness under transport faults and churn (extension; the paper's
// §3.2 leaves failure handling to the DHT, i.e. best-effort). Sweeps drop
// rate x reliability on/off per algorithm and reports answer completeness
// against the loss-free oracle plus the retry/ack overhead the reliable
// delivery layer pays. A scripted-churn pair per algorithm isolates the
// soft-state repair path. Besides the usual rows, emits machine-readable
// BENCH_robustness.json for plotting.

#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "bench_common.h"
#include "faults/churn.h"
#include "query/parser.h"
#include "reference/reference_engine.h"

using namespace contjoin;

namespace {

struct RunConfig {
  core::Algorithm algorithm;
  double drop_prob;
  bool churn;
  bool reliability;
};

struct RunOutcome {
  size_t expected = 0;
  size_t delivered = 0;  // Distinct expected answers actually delivered.
  core::NodeMetrics totals;
  uint64_t injected_drops = 0;
  uint64_t injected_duplicates = 0;
  uint64_t injected_delays = 0;
  uint64_t total_hops = 0;
  uint64_t total_bytes = 0;  // Encoded wire size of every transmitted hop.

  double Completeness() const {
    return expected == 0 ? 1.0
                         : static_cast<double>(delivered) /
                               static_cast<double>(expected);
  }
};

/// The protocol-carrying message classes; ring maintenance stays reliable
/// so the sweep isolates protocol-level loss (as in the equivalence tests).
faults::FaultOptions LossyTransport(double drop_prob, uint64_t seed) {
  faults::FaultOptions fopts;
  fopts.seed = seed * 13 + 1;
  faults::FaultProfile p;
  p.drop_prob = drop_prob;
  p.duplicate_prob = drop_prob / 2;
  p.delay_prob = drop_prob / 2;
  p.max_extra_delay = 3;
  fopts.SetProfiles(
      std::vector<sim::MsgClass>{
          sim::MsgClass::kQueryIndex, sim::MsgClass::kTupleIndex,
          sim::MsgClass::kRewrittenQuery, sim::MsgClass::kNotification},
      p);
  return fopts;
}

RunOutcome RunOne(const RunConfig& rc, size_t num_nodes, size_t num_queries,
                  size_t num_tuples, uint64_t seed) {
  workload::WorkloadOptions wopts;
  wopts.seed = seed;
  wopts.attrs_per_relation = 3;
  wopts.domain = 40;
  wopts.zipf_theta = 0.6;
  workload::WorkloadGenerator gen(wopts);

  core::Options opts;
  opts.num_nodes = num_nodes;
  opts.algorithm = rc.algorithm;
  opts.seed = seed;
  if (rc.drop_prob > 0) opts.faults = LossyTransport(rc.drop_prob, seed);
  opts.reliability.enabled = rc.reliability;
  opts.count_wire_bytes = true;

  core::ContinuousQueryNetwork net(opts);
  CJ_CHECK(gen.RegisterSchemas(net.catalog()).ok());

  ref::ReferenceEngine oracle;
  Rng placement(seed * 7 + 1);
  uint64_t ref_seq = 0;

  auto alive_node = [&]() {
    size_t node = placement.NextBelow(num_nodes);
    while (!net.node(node)->alive()) node = (node + 1) % net.num_nodes();
    return node;
  };
  auto insert_one = [&]() {
    auto [relation, values] = gen.NextTuple();
    std::vector<rel::Value> copy = values;
    CJ_CHECK(net.InsertTuple(alive_node(), relation, std::move(values)).ok());
    oracle.InsertTuple(std::make_shared<const rel::Tuple>(
        relation, std::move(copy), net.now(), ref_seq++));
  };

  for (size_t i = 0; i < num_queries; ++i) {
    std::string sql = gen.NextQuerySql();
    auto key = net.SubmitQuery(alive_node(), sql);
    CJ_CHECK(key.ok()) << key.status().ToString();
    auto parsed = query::ParseQuery(sql, *net.catalog());
    CJ_CHECK(parsed.ok());
    parsed.value().set_key(key.value());
    parsed.value().set_insertion_time(net.now());
    oracle.AddQuery(std::make_shared<const query::ContinuousQuery>(
        std::move(parsed).value()));
  }

  // Pin the churn schedule to measured per-insert virtual time (retry
  // timers dilate it), as in the fault-equivalence tests.
  rel::Timestamp before_first = net.now();
  insert_one();
  sim::SimTime dt = std::max<rel::Timestamp>(1, net.now() - before_first);
  if (rc.churn) {
    net.InstallChurnScript(faults::ChurnScript::Alternating(
        net.now() + (num_tuples / 8) * dt, (num_tuples / 8) * dt,
        /*crashes=*/3, /*joins=*/2));
  }
  for (size_t i = 1; i < num_tuples; ++i) insert_one();
  for (int i = 0; i < 200 && net.PendingChurnEvents() > 0; ++i) insert_one();

  // Crashed subscribers reconnect and receive their ring-stored answers.
  for (size_t i = 0; i < net.num_nodes(); ++i) {
    if (!net.node(i)->alive()) net.ReconnectNode(i, /*new_ip=*/false);
  }

  std::vector<core::Notification> all;
  for (size_t i = 0; i < net.num_nodes(); ++i) {
    for (core::Notification& n : net.TakeNotifications(i)) {
      all.push_back(std::move(n));
    }
  }
  std::set<std::string> actual = ref::ReferenceEngine::ContentSet(all);
  std::set<std::string> expected = oracle.ContentSet();

  RunOutcome out;
  out.expected = expected.size();
  for (const std::string& key : expected) {
    if (actual.count(key) > 0) ++out.delivered;
  }
  out.totals = net.TotalMetrics();
  if (net.fault_plan() != nullptr) {
    out.injected_drops = net.fault_plan()->injected_drops();
    out.injected_duplicates = net.fault_plan()->injected_duplicates();
    out.injected_delays = net.fault_plan()->injected_delays();
  }
  out.total_hops = net.stats().total_hops();
  out.total_bytes = net.stats().total_bytes();
  return out;
}

std::string JsonRecord(const RunConfig& rc, const RunOutcome& o) {
  std::string json = "    {";
  json += "\"algorithm\": \"" + std::string(AlgorithmName(rc.algorithm)) +
          "\", ";
  json += "\"drop_prob\": " + bench::Fmt(rc.drop_prob) + ", ";
  json += std::string("\"churn\": ") + (rc.churn ? "true" : "false") + ", ";
  json += std::string("\"reliability\": ") +
          (rc.reliability ? "true" : "false") + ", ";
  json += "\"expected\": " + std::to_string(o.expected) + ", ";
  json += "\"delivered\": " + std::to_string(o.delivered) + ", ";
  json += "\"completeness\": " + bench::Fmt(o.Completeness()) + ", ";
  json += "\"reliable_sent\": " + std::to_string(o.totals.reliable_sent) +
          ", ";
  json += "\"retries\": " + std::to_string(o.totals.reliable_retries) + ", ";
  json += "\"acks\": " + std::to_string(o.totals.reliable_acks_sent) + ", ";
  json += "\"dups_suppressed\": " +
          std::to_string(o.totals.reliable_dups_suppressed) + ", ";
  json += "\"abandoned\": " + std::to_string(o.totals.reliable_abandoned) +
          ", ";
  json += "\"injected_drops\": " + std::to_string(o.injected_drops) + ", ";
  json += "\"injected_duplicates\": " +
          std::to_string(o.injected_duplicates) + ", ";
  json += "\"injected_delays\": " + std::to_string(o.injected_delays) + ", ";
  json += "\"total_hops\": " + std::to_string(o.total_hops) + ", ";
  json += "\"total_bytes\": " + std::to_string(o.total_bytes);
  json += "}";
  return json;
}

std::string Row(const RunConfig& rc, const RunOutcome& o) {
  return std::string(AlgorithmName(rc.algorithm)) + "\t" +
         bench::Fmt(rc.drop_prob * 100) + "\t" +
         (rc.churn ? "yes" : "no") + "\t" +
         (rc.reliability ? "on" : "off") + "\t" +
         bench::Fmt(100.0 * o.Completeness()) + "\t" +
         std::to_string(o.delivered) + "/" + std::to_string(o.expected) +
         "\t" + std::to_string(o.totals.reliable_retries) + "\t" +
         std::to_string(o.totals.reliable_acks_sent) + "\t" +
         std::to_string(o.injected_drops) + "\t" +
         std::to_string(o.total_hops) + "\t" + std::to_string(o.total_bytes);
}

}  // namespace

int main() {
  bench::PrintFigure(
      "E-R",
      "Answer completeness and delivery overhead under message loss and "
      "churn (reliability layer on/off)",
      "with the reliability layer on, completeness stays at 100% at every "
      "fault rate, paid for in retries and acks; with it off (the paper's "
      "§3.2 best-effort semantics) completeness falls as the drop rate "
      "rises, and scripted churn loses further answers");

  const size_t kNodes = bench::Scaled(20);
  const size_t kQueries = bench::Scaled(20);
  const size_t kTuples = bench::Scaled(100);
  bench::PrintEffective(kNodes, kQueries, kTuples);
  const uint64_t kSeed = 5;

  const std::vector<core::Algorithm> kAlgorithms = {
      core::Algorithm::kSai, core::Algorithm::kDaiQ, core::Algorithm::kDaiT,
      core::Algorithm::kDaiV};

  std::vector<RunConfig> sweep;
  // Fault-rate axis, ring intact: completeness vs drop rate.
  for (core::Algorithm alg : kAlgorithms) {
    for (double p : {0.0, 0.01, 0.05}) {
      for (bool reliability : {true, false}) {
        sweep.push_back(RunConfig{alg, p, /*churn=*/false, reliability});
      }
    }
  }
  // Churn pair, low loss: what the soft-state repair path buys.
  for (core::Algorithm alg : kAlgorithms) {
    for (bool reliability : {true, false}) {
      sweep.push_back(RunConfig{alg, 0.01, /*churn=*/true, reliability});
    }
  }

  bench::PrintRow(
      "algorithm\tdrop%\tchurn\treliability\tcompleteness%\tanswers\t"
      "retries\tacks\tinjected_drops\ttotal_hops\tbytes");
  std::vector<std::string> records;
  for (const RunConfig& rc : sweep) {
    RunOutcome o = RunOne(rc, kNodes, kQueries, kTuples, kSeed);
    bench::PrintRow(Row(rc, o));
    records.push_back(JsonRecord(rc, o));
  }

  std::ofstream json("BENCH_robustness.json");
  json << "{\n  \"figure\": \"robustness\",\n  \"runs\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    json << records[i] << (i + 1 < records.size() ? ",\n" : "\n");
  }
  json << "  ]\n}\n";
  std::printf("\nwrote BENCH_robustness.json (%zu runs)\n", records.size());
  return 0;
}
