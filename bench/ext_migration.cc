// A2 (extension ablation, not a paper figure) — §4.7 "moving an
// identifier": the effect of migrating the hottest attribute-level
// rewriter keys on the filtering-load distribution, compared with the
// replication scheme.

#include <algorithm>
#include <map>

#include "bench_common.h"

using namespace contjoin;

namespace {

struct Result {
  double attr_tf_max;
  double attr_tf_top1;
  double hops_per_insert;
};

Result Run(int migrations, int replication, size_t queries, size_t tuples) {
  workload::DriverConfig cfg = bench::DefaultConfig();
  cfg.engine.algorithm = core::Algorithm::kDaiT;
  cfg.engine.attribute_replication = replication;
  cfg.workload.num_relation_pairs = 2;  // Few hot rewriter keys.
  // A small ring makes several rewriter keys collide onto the same nodes —
  // the situation "moving an identifier" exists to fix (migration
  // relocates a key's work wholesale; it divides nothing by itself).
  cfg.engine.num_nodes = bench::Scaled(64, 16);
  workload::ExperimentDriver driver(cfg);
  driver.InstallQueries(queries);

  // Warm-up phase to locate the hottest keys.
  driver.StreamTuples(tuples / 4);
  driver.DrainNotifications();

  if (migrations > 0) {
    // Migration relocates a key's whole rewriter role, so it helps when a
    // node accumulated SEVERAL keys: move all but one key off the most
    // loaded nodes (the operator policy the thesis' Fig. 4.7 sketches).
    auto& net = driver.net();
    struct KeyRef {
      std::string relation, attr;
    };
    std::map<const chord::Node*, std::vector<KeyRef>> keys_by_node;
    for (const std::string& relation : {std::string("R0"), std::string("S0"),
                                        std::string("R1"),
                                        std::string("S1")}) {
      const rel::RelationSchema* schema = net.catalog()->Find(relation);
      if (schema == nullptr) continue;
      for (const rel::Attribute& attr : schema->attributes()) {
        chord::Node* rewriter = net.network()->OracleSuccessor(
            core::AttrIndexId(relation, attr.name, 0));
        keys_by_node[rewriter].push_back({relation, attr.name});
      }
    }
    // Nodes ordered by current attribute-level load, most loaded first.
    std::vector<std::pair<uint64_t, const chord::Node*>> hot;
    for (size_t i = 0; i < net.num_nodes(); ++i) {
      if (keys_by_node.count(net.node(i)) > 0) {
        hot.push_back({net.metrics(i).filter_ops_attr, net.node(i)});
      }
    }
    std::sort(hot.rbegin(), hot.rend());
    int moved = 0;
    for (const auto& [load, node] : hot) {
      const std::vector<KeyRef>& keys = keys_by_node[node];
      // Keep one key in place; relocate the rest.
      for (size_t k = 1; k < keys.size() && moved < migrations; ++k) {
        CJ_CHECK(
            net.MigrateAttribute(0, keys[k].relation, keys[k].attr).ok());
        ++moved;
      }
      if (moved >= migrations) break;
    }
  }

  driver.net().ResetLoadMetrics();
  (void)driver.TrafficSinceLastSnapshot();
  driver.StreamTuples(tuples);
  sim::NetStats traffic = driver.TrafficSinceLastSnapshot();
  driver.DrainNotifications();

  LoadDistribution tf = driver.net().AttrFilteringLoadDistribution();
  Result out;
  out.attr_tf_max = tf.max();
  out.attr_tf_top1 = tf.TopShare(0.01);
  out.hops_per_insert = static_cast<double>(traffic.total_hops()) /
                        static_cast<double>(tuples);
  return out;
}

}  // namespace

int main() {
  bench::PrintFigure(
      "A2 (extension ablation)",
      "Moving an identifier (§4.7) vs replication: attribute-level "
      "filtering hotspots",
      "migration relocates whole keys, so it helps exactly when a node "
      "accumulated several of them (modest max reduction here); "
      "replication divides each key's work and is the stronger lever; the "
      "price of migration is one extra forwarding hop per al-index "
      "message");

  const size_t kQueries = bench::Scaled(800);
  const size_t kTuples = bench::Scaled(1600);
  bench::PrintEffective(bench::Scaled(64, 16), kQueries, kTuples);
  bench::PrintRow(
      "scheme\tattr_TF_max\tattr_TF_top1pct\thops_per_insert");
  struct Config {
    const char* name;
    int migrations;
    int replication;
  };
  for (const Config& c :
       {Config{"baseline", 0, 1}, Config{"migrate-top4", 4, 1},
        Config{"replicate-x4", 0, 4}, Config{"both", 4, 4}}) {
    Result r = Run(c.migrations, c.replication, kQueries, kTuples);
    bench::PrintRow(std::string(c.name) + "\t" + bench::Fmt(r.attr_tf_max) +
                    "\t" + bench::Fmt(r.attr_tf_top1) + "\t" +
                    bench::Fmt(r.hops_per_insert));
  }
  return 0;
}
