// E7 — "Effect of the replication scheme in storage load distribution"
// (§5.6): the price of replicating rewriters is that each query is stored
// at k replicas per index attribute — total attribute-level storage grows
// linearly in k while per-node peaks fall.

#include "bench_common.h"

using namespace contjoin;

int main() {
  bench::PrintFigure(
      "E7", "Effect of the replication scheme in storage load distribution",
      "the storage cost of the scheme: every replica stores all queries of "
      "its key, so total attribute-level storage grows by the factor k; the "
      "load spreads over ~k times as many nodes (falling gini/top-share) "
      "while individual bucket sizes stay constant");

  const size_t kQueries = bench::Scaled(800);
  const size_t kTuples = bench::Scaled(1600);
  bench::PrintEffective(bench::DefaultConfig().engine.num_nodes, kQueries,
                        kTuples);
  bench::PrintRow(
      "replication\ttotal_alqt_queries\tattr_TS_max\tattr_TS_p99\t"
      "attr_TS_gini\tattr_TS_top1pct");
  for (int k : {1, 2, 4, 8}) {
    workload::DriverConfig cfg = bench::DefaultConfig();
    cfg.engine.algorithm = core::Algorithm::kDaiT;
    cfg.engine.attribute_replication = k;
    cfg.workload.num_relation_pairs = 2;
    workload::ExperimentDriver driver(cfg);
    (void)bench::RunStandardPhases(&driver, kQueries, kTuples);
    // Replication multiplies the attribute-level (rewriter) storage, which
    // is what this figure tracks; value-level storage is untouched.
    LoadDistribution ts;
    for (size_t i = 0; i < driver.net().num_nodes(); ++i) {
      ts.Add(static_cast<double>(driver.net().storage(i).alqt_queries));
    }
    bench::PrintRow(
        std::to_string(k) + "\t" +
        bench::Fmt(driver.net().TotalStorage().alqt_queries) + "\t" +
        bench::Fmt(ts.max()) + "\t" + bench::Fmt(ts.Percentile(99)) + "\t" +
        bench::Fmt(ts.Gini()) + "\t" + bench::Fmt(ts.TopShare(0.01)));
  }
  return 0;
}
