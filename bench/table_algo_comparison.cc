// T1 — Table 4.1 "A comparison of all algorithms": the per-algorithm step
// costs, measured on one identical workload. Also reproduces the §4.5
// claim that the key-prefixed DAI-V variant costs a large traffic multiple
// (the thesis reports ~250x at 10^4 nodes / 10^5 queries; the factor at
// this scale is printed alongside).

#include "bench_common.h"

using namespace contjoin;

namespace {

struct Row {
  std::string name;
  double query_hops;       // Hops per query submission.
  double insert_hops;      // Hops per tuple insertion (all classes).
  double join_hops;        // ... of which rewritten-query traffic.
  uint64_t rewrites_sent;
  uint64_t rewrites_skipped_dup;
  uint64_t vlqt, vltt, daiv;  // Evaluator-side storage breakdown.
  size_t notifications;
};

Row Measure(core::Algorithm alg, bool prefix, size_t queries, size_t tuples) {
  workload::DriverConfig cfg = bench::DefaultConfig();
  cfg.engine.algorithm = alg;
  cfg.engine.daiv_prefix_query_key = prefix;
  workload::ExperimentDriver driver(cfg);

  (void)driver.TrafficSinceLastSnapshot();
  driver.InstallQueries(queries);
  sim::NetStats query_traffic = driver.TrafficSinceLastSnapshot();
  driver.net().ResetLoadMetrics();
  (void)driver.TrafficSinceLastSnapshot();
  driver.StreamTuples(tuples);
  sim::NetStats insert_traffic = driver.TrafficSinceLastSnapshot();

  Row row;
  row.name = core::AlgorithmName(alg);
  if (prefix) row.name += "+qkey";
  row.query_hops =
      static_cast<double>(query_traffic.total_hops()) / queries;
  row.insert_hops =
      static_cast<double>(insert_traffic.total_hops()) / tuples;
  row.join_hops = static_cast<double>(insert_traffic.hops(
                      sim::MsgClass::kRewrittenQuery)) /
                  tuples;
  core::NodeMetrics metrics = driver.net().TotalMetrics();
  row.rewrites_sent = metrics.rewrites_sent;
  row.rewrites_skipped_dup = metrics.rewrites_skipped_dup;
  core::NodeStorage storage = driver.net().TotalStorage();
  row.vlqt = storage.vlqt_rewritten;
  row.vltt = storage.vltt_tuples;
  row.daiv = storage.daiv_entries;
  row.notifications = driver.DrainNotifications();
  return row;
}

}  // namespace

int main() {
  bench::PrintFigure(
      "T1 (paper Table 4.1)", "A comparison of all algorithms",
      "SAI: 1 rewriter/query, evaluators store rewritten queries AND "
      "tuples; DAI-Q: 2 rewriters, evaluators store tuples only; DAI-T: 2 "
      "rewriters, evaluators store rewritten queries only, duplicates never "
      "resent (cheapest steady-state); DAI-V: tuples indexed at the "
      "attribute level only, handles T2, its key-prefixed variant costs a "
      "large traffic multiple (~250x at thesis scale)");

  const size_t kQueries = bench::Scaled(2000);
  const size_t kTuples = bench::Scaled(4000);
  bench::PrintEffective(bench::DefaultConfig().engine.num_nodes, kQueries,
                        kTuples);

  bench::PrintRow(
      "algorithm\tquery_hops\tinsert_hops\tjoin_hops\trewrites\t"
      "dup_skipped\tvlqt\tvltt\tdaiv\tnotifications");
  Row daiv_plain{};
  for (auto alg : {core::Algorithm::kSai, core::Algorithm::kDaiQ,
                   core::Algorithm::kDaiT, core::Algorithm::kDaiV}) {
    Row row = Measure(alg, /*prefix=*/false, kQueries, kTuples);
    if (alg == core::Algorithm::kDaiV) daiv_plain = row;
    bench::PrintRow(row.name + "\t" + bench::Fmt(row.query_hops) + "\t" +
                    bench::Fmt(row.insert_hops) + "\t" +
                    bench::Fmt(row.join_hops) + "\t" +
                    bench::Fmt(row.rewrites_sent) + "\t" +
                    bench::Fmt(row.rewrites_skipped_dup) + "\t" +
                    bench::Fmt(row.vlqt) + "\t" + bench::Fmt(row.vltt) +
                    "\t" + bench::Fmt(row.daiv) + "\t" +
                    bench::Fmt(static_cast<uint64_t>(row.notifications)));
  }
  Row prefixed = Measure(core::Algorithm::kDaiV, /*prefix=*/true, kQueries,
                         kTuples);
  bench::PrintRow(prefixed.name + "\t" + bench::Fmt(prefixed.query_hops) +
                  "\t" + bench::Fmt(prefixed.insert_hops) + "\t" +
                  bench::Fmt(prefixed.join_hops) + "\t" +
                  bench::Fmt(prefixed.rewrites_sent) + "\t" +
                  bench::Fmt(prefixed.rewrites_skipped_dup) + "\t" +
                  bench::Fmt(prefixed.vlqt) + "\t" +
                  bench::Fmt(prefixed.vltt) + "\t" +
                  bench::Fmt(prefixed.daiv) + "\t" +
                  bench::Fmt(static_cast<uint64_t>(prefixed.notifications)));
  bench::PrintRow(
      "# DAI-V key-prefix join-traffic blow-up factor at this scale: " +
      bench::Fmt(prefixed.join_hops /
                 (daiv_plain.join_hops > 0 ? daiv_plain.join_hops : 1.0)) +
      "x (thesis reports ~250x at 1e4 nodes / 1e5 queries)");
  return 0;
}
