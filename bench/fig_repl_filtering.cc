// E6 — "Effect of the replication scheme in filtering load distribution"
// (§5.6): replicating the rewriter role of each Relation+Attribute key over
// k nodes spreads the attribute-level filtering load.
//
// A small schema (2 relation pairs) concentrates the rewriter role in a few
// nodes, which is exactly the hotspot the scheme attacks.

#include "bench_common.h"

using namespace contjoin;

int main() {
  bench::PrintFigure(
      "E6", "Effect of the replication scheme in filtering load distribution",
      "larger replication factors flatten the attribute-level filtering "
      "load: the hottest rewriter's load drops roughly by k, and the load "
      "spreads over k times as many nodes");

  const size_t kQueries = bench::Scaled(800);
  const size_t kTuples = bench::Scaled(1600);
  bench::PrintEffective(bench::DefaultConfig().engine.num_nodes, kQueries,
                        kTuples);
  bench::PrintRow(
      "replication\tattr_TF_max\tattr_TF_p99\tattr_TF_gini\t"
      "attr_TF_top1pct\tloaded_nodes");
  for (int k : {1, 2, 4, 8}) {
    workload::DriverConfig cfg = bench::DefaultConfig();
    cfg.engine.algorithm = core::Algorithm::kDaiT;
    cfg.engine.attribute_replication = k;
    cfg.workload.num_relation_pairs = 2;
    workload::ExperimentDriver driver(cfg);
    (void)bench::RunStandardPhases(&driver, kQueries, kTuples);
    LoadDistribution tf = driver.net().AttrFilteringLoadDistribution();
    size_t loaded = 0;
    for (double v : tf.SortedDescending()) {
      if (v > 0) ++loaded;
    }
    bench::PrintRow(std::to_string(k) + "\t" + bench::Fmt(tf.max()) + "\t" +
                    bench::Fmt(tf.Percentile(99)) + "\t" +
                    bench::Fmt(tf.Gini()) + "\t" +
                    bench::Fmt(tf.TopShare(0.01)) + "\t" +
                    std::to_string(loaded));
  }
  return 0;
}
