// contjoin_check: project-specific static analysis enforcing the
// architecture PR 1 introduced and the determinism guarantees the paper's
// evaluation rests on. Two passes: symbols.h builds a whole-tree symbol
// index (function definitions, call sites, payload creations, container
// declarations), and the rule families below run over it. Nine families:
//
//  1. layering       — the include graph of src/ must respect the layer
//                      DAG (common → relational/query/sim → chord → core
//                      → workload/reference), and the protocol role
//                      modules (rewriter, evaluator, subscriber,
//                      mw_protocol, otj_protocol) may reach shared engine
//                      state only via the ProtocolContext seam — never
//                      core/engine.h.
//  2. messages       — every CqMsgType enumerator is tagged by exactly
//                      one payload-struct constructor in core/messages.h,
//                      has exactly one registered handler in
//                      core/dispatch.cc, and kCqMsgTypeCount is derived
//                      from the last enumerator.
//  3. codecs         — every CqMsgType enumerator has exactly one
//                      Encode/Decode pair registered in the default wire
//                      codec table (core/codec.cc); a payload type
//                      without a codec would be silently undeliverable
//                      over the socket transport.
//  4. determinism    — src/ must not call std::rand/srand or read wall
//                      clocks (system_clock::now, time()); range-for
//                      iteration over an unordered container requires a
//                      `// contjoin-check: ordered-ok(<reason>)` waiver
//                      on the loop line or one of the two lines above it.
//  5. lint-config    — the promoted clang-tidy checks
//                      (bugprone-use-after-move, bugprone-dangling-handle,
//                      performance-*) must be enabled and listed in
//                      WarningsAsErrors in .clang-tidy.
//  6. shard-escape   — role-module handlers run concurrently across node
//                      shards under the parallel simulator core, so role
//                      modules must not declare mutable static data, must
//                      not draw from the shared engine RNG (GetRng), may
//                      touch NodeState only through StateOf(<their own
//                      node parameter>) — other nodes' state is reachable
//                      only inside ctx.Transmit / ctx.ScheduleAfter
//                      closures, which execute on the destination shard —
//                      and must not let unordered-container iteration
//                      feed a send loop, even through one helper call.
//                      Waiver: `// contjoin-check: shard-ok(<reason>)`.
//  7. protocol-flow  — the extracted role×message send/handle graph must
//                      match the checked-in tools/check/protocol.spec:
//                      every send edge declared, every declared edge
//                      present, handlers as declared, criticality in sync
//                      with reliability::IsCritical (critical edges must
//                      be armed through the reliability wrapper), and
//                      wire reachability in sync with the codec table
//                      (simulator-only types must never be sent by a
//                      role module).
//  8. hotpath        — functions marked `// contjoin-check: hot` (within
//                      two lines above the definition) may not allocate
//                      (new / make_unique / make_shared / std::string
//                      temporaries / to_string / ostringstream),
//                      construct std::regex, or take locks. Waiver:
//                      `// contjoin-check: hot-ok(<reason>)`.
//  9. compile-db     — with -p, every scanned .cc translation unit must
//                      appear in the compile database (dead files cannot
//                      hide).
//
// The tool is deliberately textual (no libclang, no std::regex): it runs
// anywhere the source tree does, in milliseconds, and its rules are
// narrow enough that token-level scanning over the shared index is
// reliable. It scans src/ plus tools/ (the checker lints itself;
// fixture trees under testdata/ are skipped).

#ifndef CONTJOIN_TOOLS_CHECK_CHECKER_H_
#define CONTJOIN_TOOLS_CHECK_CHECKER_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "symbols.h"

namespace contjoin::check {

struct Diagnostic {
  std::string file;  // Path relative to the checked root.
  size_t line = 0;   // 1-based; 0 for file- or config-level findings.
  std::string rule;  // "layering", "messages", "codecs", "determinism",
                     // "lint-config", "shard-escape", "protocol-flow",
                     // "hotpath", "compile-db".
  std::string message;
};

struct CheckConfig {
  std::string root;        // Tree root (contains src/ and .clang-tidy).
  std::string compile_db;  // Optional compile_commands.json path; empty
                           // skips the compile-database coverage check.
  std::string protocol_spec;  // Protocol spec path; empty means
                              // <root>/tools/check/protocol.spec.
  bool check_layering = true;
  bool check_messages = true;
  bool check_codecs = true;
  bool check_determinism = true;
  bool check_lint_config = true;
  bool check_shard_escape = true;
  bool check_protocol_flow = true;
  bool check_hotpath = true;
};

/// Wall time one rule family spent, for --timings.
struct RuleTiming {
  std::string rule;
  double millis = 0.0;
};

/// Runs every enabled rule family; diagnostics come back sorted by file,
/// line, rule (deterministic across runs and filesystems). When
/// `timings` is non-null it receives one entry per rule family plus one
/// for building the symbol index.
std::vector<Diagnostic> RunChecks(const CheckConfig& config,
                                  std::vector<RuleTiming>* timings = nullptr);

// Individual rule families (exposed so the fixture tests can prove each
// one fires in isolation). Each builds its own symbol index; RunChecks
// shares one across all families.
void CheckLayering(const CheckConfig& config, std::vector<Diagnostic>* out);
void CheckMessages(const CheckConfig& config, std::vector<Diagnostic>* out);
void CheckCodecs(const CheckConfig& config, std::vector<Diagnostic>* out);
void CheckDeterminism(const CheckConfig& config,
                      std::vector<Diagnostic>* out);
void CheckLintConfig(const CheckConfig& config,
                     std::vector<Diagnostic>* out);
void CheckShardEscape(const CheckConfig& config,
                      std::vector<Diagnostic>* out);
void CheckProtocolFlow(const CheckConfig& config,
                       std::vector<Diagnostic>* out);
void CheckHotPath(const CheckConfig& config, std::vector<Diagnostic>* out);
void CheckCompileDb(const CheckConfig& config, std::vector<Diagnostic>* out);

// --- Protocol graph (rule 7's extraction side, exposed for the golden
// test and the --dump-graph CLI mode) ------------------------------------------

struct ProtocolGraph {
  // CqMsgType enumerators in declaration order.
  std::vector<std::string> enums;
  // Enumerator -> handling role from the default dispatch table ("" when
  // unregistered). Roles: rewriter, evaluator, subscriber, mw, otj,
  // reliability.
  std::map<std::string, std::string> handler_of;
  // Enumerators reliability::IsCritical returns true for.
  std::set<std::string> critical;
  // Enumerators with a RegisterCodec entry (transport-reachable).
  std::set<std::string> has_codec;
  // Enumerator -> sending role -> armed (reaches a reliability wrapper
  // within one hop of the creating function, callers included).
  std::map<std::string, std::map<std::string, bool>> senders;
  // (enumerator, role) -> first payload-creation site, for diagnostics.
  std::map<std::string, std::map<std::string, std::pair<std::string, size_t>>>
      send_sites;
};

ProtocolGraph ExtractProtocolGraph(const SymbolIndex& index);

/// Stable one-line-per-type rendering, diffable against
/// tools/check/protocol_graph.golden.
std::string RenderProtocolGraph(const ProtocolGraph& graph);

// --- Output -------------------------------------------------------------------

/// "file:line: [rule] message" (line omitted when 0).
std::string FormatDiagnostic(const Diagnostic& d);

/// JSON array of {file, line, rule, message} objects (sorted as given),
/// for CI artifact upload.
std::string FormatDiagnosticsJson(const std::vector<Diagnostic>& diags);

}  // namespace contjoin::check

#endif  // CONTJOIN_TOOLS_CHECK_CHECKER_H_
