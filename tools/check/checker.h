// contjoin_check: project-specific static analysis enforcing the
// architecture PR 1 introduced and the determinism guarantees the paper's
// evaluation rests on. Six rule families:
//
//  1. layering      — the include graph of src/ must respect the layer DAG
//                     (common → relational/query/sim → chord → core →
//                     workload/reference), and the protocol role modules
//                     (rewriter, evaluator, subscriber, mw_protocol,
//                     otj_protocol) may reach shared engine state only via
//                     the ProtocolContext seam — never core/engine.h.
//  2. messages      — every CqMsgType enumerator is tagged by exactly one
//                     payload-struct constructor in core/messages.h, has
//                     exactly one registered handler in core/dispatch.cc,
//                     and kCqMsgTypeCount is derived from the last
//                     enumerator.
//  3. codecs        — every CqMsgType enumerator has exactly one
//                     Encode/Decode pair registered in the default wire
//                     codec table (core/codec.cc); a payload type without
//                     a codec would be silently undeliverable over the
//                     socket transport.
//  4. determinism   — src/ must not call std::rand/srand or read wall
//                     clocks (system_clock::now, time()); range-for
//                     iteration over an unordered container requires a
//                     `// contjoin-check: ordered-ok(<reason>)` waiver on
//                     the loop line or one of the two lines above it.
//  5. lint-config   — the promoted clang-tidy checks
//                     (bugprone-use-after-move, bugprone-dangling-handle,
//                     performance-*) must be enabled and listed in
//                     WarningsAsErrors in .clang-tidy.
//  6. shard-safety  — role-module handlers run concurrently across node
//                     shards under the parallel simulator core, so role
//                     modules must not declare mutable static data and
//                     must not draw from the shared engine RNG (GetRng);
//                     a `// contjoin-check: shard-ok(<reason>)` waiver on
//                     the flagged line or one of the two lines above it
//                     silences a finding.
//
// The tool is deliberately textual (no libclang): it runs anywhere the
// source tree does, in milliseconds, and its rules are narrow enough that
// token-level scanning is reliable. It operates on the tree plus the
// exported compile database (every src/ translation unit must be built).

#ifndef CONTJOIN_TOOLS_CHECK_CHECKER_H_
#define CONTJOIN_TOOLS_CHECK_CHECKER_H_

#include <cstddef>
#include <string>
#include <vector>

namespace contjoin::check {

struct Diagnostic {
  std::string file;  // Path relative to the checked root.
  size_t line = 0;   // 1-based; 0 for file- or config-level findings.
  std::string rule;  // "layering", "messages", "codecs", "determinism",
                     // "lint-config", "shard-safety", "compile-db".
  std::string message;
};

struct CheckConfig {
  std::string root;        // Tree root (contains src/ and .clang-tidy).
  std::string compile_db;  // Optional compile_commands.json path; empty
                           // skips the compile-database coverage check.
  bool check_layering = true;
  bool check_messages = true;
  bool check_codecs = true;
  bool check_determinism = true;
  bool check_lint_config = true;
  bool check_shard_safety = true;
};

/// Runs every enabled rule family; diagnostics come back sorted by file,
/// line, rule (deterministic across runs and filesystems).
std::vector<Diagnostic> RunChecks(const CheckConfig& config);

// Individual rule families (exposed so the fixture tests can prove each
// one fires in isolation).
void CheckLayering(const CheckConfig& config, std::vector<Diagnostic>* out);
void CheckMessages(const CheckConfig& config, std::vector<Diagnostic>* out);
void CheckCodecs(const CheckConfig& config, std::vector<Diagnostic>* out);
void CheckDeterminism(const CheckConfig& config,
                      std::vector<Diagnostic>* out);
void CheckLintConfig(const CheckConfig& config,
                     std::vector<Diagnostic>* out);
void CheckShardSafety(const CheckConfig& config,
                      std::vector<Diagnostic>* out);
void CheckCompileDb(const CheckConfig& config, std::vector<Diagnostic>* out);

/// "file:line: [rule] message" (line omitted when 0).
std::string FormatDiagnostic(const Diagnostic& d);

}  // namespace contjoin::check

#endif  // CONTJOIN_TOOLS_CHECK_CHECKER_H_
