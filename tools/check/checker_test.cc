#include "checker.h"

#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace contjoin::check {
namespace {

std::string Fixture(const std::string& name) {
  return std::string(CONTJOIN_CHECK_TESTDATA) + "/" + name;
}

size_t CountRule(const std::vector<Diagnostic>& diags,
                 const std::string& rule) {
  return static_cast<size_t>(
      std::count_if(diags.begin(), diags.end(),
                    [&rule](const Diagnostic& d) { return d.rule == rule; }));
}

bool AnyMessageContains(const std::vector<Diagnostic>& diags,
                        const std::string& needle) {
  return std::any_of(diags.begin(), diags.end(),
                     [&needle](const Diagnostic& d) {
                       return d.message.find(needle) != std::string::npos;
                     });
}

TEST(CheckerTest, CleanFixtureHasNoFindings) {
  CheckConfig config;
  config.root = Fixture("clean");
  std::vector<Diagnostic> diags = RunChecks(config);
  for (const Diagnostic& d : diags) ADD_FAILURE() << FormatDiagnostic(d);
  EXPECT_TRUE(diags.empty());
}

TEST(CheckerTest, LayeringRuleFires) {
  CheckConfig config;
  config.root = Fixture("layering_bad");
  std::vector<Diagnostic> diags;
  CheckLayering(config, &diags);
  EXPECT_EQ(diags.size(), 3u);
  // Upward include from the bottom layer.
  EXPECT_TRUE(AnyMessageContains(diags, "layer 'src/common'"));
  // Sideways include chord -> query.
  EXPECT_TRUE(AnyMessageContains(diags, "layer 'src/chord'"));
  // Role module bypassing the seam.
  EXPECT_TRUE(AnyMessageContains(diags, "ProtocolContext seam"));
}

TEST(CheckerTest, MessagesRuleFires) {
  CheckConfig config;
  config.root = Fixture("messages_bad");
  std::vector<Diagnostic> diags;
  CheckMessages(config, &diags);
  EXPECT_EQ(CountRule(diags, "messages"), 8u);
  EXPECT_TRUE(AnyMessageContains(diags, "last enumerator is kAck"));
  EXPECT_TRUE(AnyMessageContains(diags, "kAlpha is tagged by 2"));
  EXPECT_TRUE(AnyMessageContains(diags, "kBeta has no payload struct"));
  EXPECT_TRUE(AnyMessageContains(diags, "kGamma has no payload struct"));
  EXPECT_TRUE(AnyMessageContains(diags, "kAlpha registered 2 times"));
  EXPECT_TRUE(AnyMessageContains(diags, "kGamma has no handler"));
  EXPECT_TRUE(AnyMessageContains(diags, "kAck has no handler"));
  EXPECT_TRUE(AnyMessageContains(diags, "unknown enumerator CqMsgType::kDelta"));
}

TEST(CheckerTest, CodecsRuleFires) {
  CheckConfig config;
  config.root = Fixture("codecs_bad");
  std::vector<Diagnostic> diags;
  CheckCodecs(config, &diags);
  EXPECT_EQ(CountRule(diags, "codecs"), 4u);
  EXPECT_TRUE(AnyMessageContains(diags, "kAlpha registered 2 times"));
  EXPECT_TRUE(AnyMessageContains(diags, "kBeta has no registered wire codec"));
  EXPECT_TRUE(
      AnyMessageContains(diags, "kDigest has no registered wire codec"));
  EXPECT_TRUE(
      AnyMessageContains(diags, "unknown enumerator CqMsgType::kGamma"));
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.file, "src/core/codec.cc") << FormatDiagnostic(d);
  }
}

TEST(CheckerTest, DeterminismRuleFires) {
  CheckConfig config;
  config.root = Fixture("determinism_bad");
  std::vector<Diagnostic> diags;
  CheckDeterminism(config, &diags);
  EXPECT_TRUE(AnyMessageContains(diags, "banned call 'rand('"));
  EXPECT_TRUE(AnyMessageContains(diags, "banned call 'srand('"));
  EXPECT_TRUE(AnyMessageContains(diags, "banned call 'system_clock::now'"));
  EXPECT_TRUE(AnyMessageContains(diags, "banned call 'time('"));
  // Two unwaived unordered iterations (direct member + alias-typed member);
  // the third loop carries an ordered-ok waiver and must not be flagged.
  EXPECT_TRUE(AnyMessageContains(diags, "container 'counts'"));
  EXPECT_TRUE(AnyMessageContains(diags, "container 'by_alias'"));
  EXPECT_EQ(CountRule(diags, "determinism"), 6u);
}

TEST(CheckerTest, LintConfigRuleFires) {
  CheckConfig config;
  config.root = Fixture("lint_bad");
  std::vector<Diagnostic> diags;
  CheckLintConfig(config, &diags);
  EXPECT_EQ(CountRule(diags, "lint-config"), 5u);
  EXPECT_TRUE(AnyMessageContains(diags, "'performance-*' is not enabled"));
  EXPECT_TRUE(
      AnyMessageContains(diags, "'bugprone-use-after-move' must be listed"));
}

TEST(CheckerTest, ShardEscapeStaticsRuleFires) {
  CheckConfig config;
  config.root = Fixture("shard_bad");
  std::vector<Diagnostic> diags;
  CheckShardEscape(config, &diags);
  // One mutable static and one RNG draw; the waived static, the waived
  // draw, the immutable statics, the static function and the non-role
  // helpers.cc static are all silent.
  EXPECT_EQ(CountRule(diags, "shard-escape"), 2u);
  EXPECT_TRUE(AnyMessageContains(diags, "mutable static data"));
  EXPECT_TRUE(AnyMessageContains(diags, "GetRng() draw"));
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.file, "src/core/rewriter.cc") << FormatDiagnostic(d);
  }
}

TEST(CheckerTest, ShardEscapeInterproceduralRuleFires) {
  CheckConfig config;
  config.root = Fixture("escape_bad");
  std::vector<Diagnostic> diags;
  CheckShardEscape(config, &diags);
  // A cross-shard StateOf write, an unordered iteration feeding a send
  // directly, and one feeding a send through a helper (one hop). The
  // Transmit-closure StateOf, the pure aggregation loop, and the waived
  // loop are all silent.
  EXPECT_EQ(CountRule(diags, "shard-escape"), 3u);
  EXPECT_TRUE(AnyMessageContains(diags, "StateOf(peer)"));
  EXPECT_TRUE(AnyMessageContains(diags, "container 'pending'"));
  EXPECT_TRUE(AnyMessageContains(diags, "EmitOne -> send"));
  EXPECT_FALSE(AnyMessageContains(diags, "container 'tallies'"));
  EXPECT_FALSE(AnyMessageContains(diags, "container 'acked'"));
}

TEST(CheckerTest, ProtocolFlowRuleFires) {
  CheckConfig config;
  config.root = Fixture("protocol_bad");
  std::vector<Diagnostic> diags;
  CheckProtocolFlow(config, &diags);
  EXPECT_EQ(CountRule(diags, "protocol-flow"), 4u);
  // kAck has a send site but no dispatch registration.
  EXPECT_TRUE(AnyMessageContains(diags, "kAck is sent by role 'rewriter' "
                                        "but never handled"));
  // kBeta is critical yet its send edge never reaches Arm/ArmAll.
  EXPECT_TRUE(
      AnyMessageContains(diags, "critical message CqMsgType::kBeta is sent "
                                "raw"));
  // kDigest has no codec but a role module sends it.
  EXPECT_TRUE(AnyMessageContains(diags, "simulator-only CqMsgType::kDigest"));
  // The spec declares a send edge that does not exist.
  EXPECT_TRUE(AnyMessageContains(diags, "`send kAlpha evaluator`"));
  // The armed edge (kAlpha via rewriter) is clean.
  EXPECT_FALSE(AnyMessageContains(diags, "CqMsgType::kAlpha is sent raw"));
}

TEST(CheckerTest, HotPathRuleFires) {
  CheckConfig config;
  config.root = Fixture("hotpath_bad");
  std::vector<Diagnostic> diags;
  CheckHotPath(config, &diags);
  // DecodeFast violates every ban class ('mutex' fires twice: the
  // declaration and the lock_guard template argument); EncodeFast's
  // allocation is waived; SlowPath is unmarked.
  EXPECT_EQ(CountRule(diags, "hotpath"), 7u);
  EXPECT_TRUE(AnyMessageContains(diags, "'new' in hot function 'DecodeFast'"));
  EXPECT_TRUE(AnyMessageContains(diags, "'make_shared'"));
  EXPECT_TRUE(AnyMessageContains(diags, "'regex'"));
  EXPECT_TRUE(AnyMessageContains(diags, "'lock_guard'"));
  EXPECT_TRUE(AnyMessageContains(diags, "'std::string'"));
  EXPECT_FALSE(AnyMessageContains(diags, "EncodeFast"));
  EXPECT_FALSE(AnyMessageContains(diags, "SlowPath"));
}

TEST(CheckerTest, CompileDbCoverageFires) {
  // A database missing dispatch.cc: it must be reported as unbuilt.
  std::string db_path =
      ::testing::TempDir() + "/contjoin_check_partial_db.json";
  {
    std::ofstream db(db_path);
    db << "[{\"directory\": \"/tmp\", \"command\": \"c++ -c\", "
          "\"file\": \"src/core/rewriter.cc\"},\n"
          " {\"directory\": \"/tmp\", \"command\": \"c++ -c\", "
          "\"file\": \"src/core/codec.cc\"}]\n";
  }
  CheckConfig config;
  config.root = Fixture("clean");
  config.compile_db = db_path;
  std::vector<Diagnostic> diags;
  CheckCompileDb(config, &diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].file, "src/core/dispatch.cc");
  EXPECT_EQ(diags[0].rule, "compile-db");
}

TEST(CheckerTest, DiagnosticsAreSortedAndStable) {
  CheckConfig config;
  config.root = Fixture("messages_bad");
  std::vector<Diagnostic> first = RunChecks(config);
  std::vector<Diagnostic> second = RunChecks(config);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(FormatDiagnostic(first[i]), FormatDiagnostic(second[i]));
  }
  for (size_t i = 1; i < first.size(); ++i) {
    EXPECT_LE(first[i - 1].file, first[i].file);
  }
}

// The real tree must satisfy every invariant the checker enforces: this is
// the same gate CI runs via the contjoin_check binary.
TEST(CheckerTest, RealSourceTreeIsClean) {
  CheckConfig config;
  config.root = CONTJOIN_SOURCE_ROOT;
  std::vector<Diagnostic> diags = RunChecks(config);
  for (const Diagnostic& d : diags) ADD_FAILURE() << FormatDiagnostic(d);
  EXPECT_TRUE(diags.empty());
}

// The extracted role x message graph for the real tree must match the
// checked-in snapshot, so an unintended protocol-shape change (a new send
// site, a rerouted handler, a dropped codec) shows up as a readable diff.
TEST(CheckerTest, ProtocolGraphGoldenMatchesRealTree) {
  SymbolIndex index = BuildSymbolIndex(CONTJOIN_SOURCE_ROOT);
  std::string rendered = RenderProtocolGraph(ExtractProtocolGraph(index));
  std::string golden = ReadFileText(std::string(CONTJOIN_SOURCE_ROOT) +
                                    "/tools/check/protocol_graph.golden");
  ASSERT_FALSE(golden.empty())
      << "tools/check/protocol_graph.golden missing; regenerate with "
         "contjoin_check --dump-graph";
  EXPECT_EQ(rendered, golden)
      << "protocol graph drifted from the golden snapshot; if the change "
         "is intentional, regenerate with contjoin_check --dump-graph and "
         "update protocol.spec to match";
}

// Every non-comment line of protocol.spec is load-bearing: deleting any
// one of them (a message, a handler, a criticality bit, a wire bit, a
// send edge) must make the protocol-flow rule fail on the real tree.
TEST(CheckerTest, ProtocolSpecLinesAllLoadBearing) {
  std::string spec_text = ReadFileText(std::string(CONTJOIN_SOURCE_ROOT) +
                                       "/tools/check/protocol.spec");
  ASSERT_FALSE(spec_text.empty());
  std::vector<std::string> lines = SplitLines(spec_text);
  std::string tmp_spec = ::testing::TempDir() + "/contjoin_check_spec_minus";
  size_t checked = 0;
  for (size_t skip = 0; skip < lines.size(); ++skip) {
    // Only fact lines are load-bearing; comments and blanks are not.
    std::string trimmed = lines[skip];
    size_t first = trimmed.find_first_not_of(" \t");
    if (first == std::string::npos || trimmed[first] == '#') continue;
    {
      std::ofstream out(tmp_spec, std::ios::trunc);
      for (size_t i = 0; i < lines.size(); ++i) {
        if (i != skip) out << lines[i] << "\n";
      }
    }
    CheckConfig config;
    config.root = CONTJOIN_SOURCE_ROOT;
    config.protocol_spec = tmp_spec;
    std::vector<Diagnostic> diags;
    CheckProtocolFlow(config, &diags);
    EXPECT_GE(CountRule(diags, "protocol-flow"), 1u)
        << "deleting spec line " << (skip + 1) << " ('" << lines[skip]
        << "') went undetected";
    ++checked;
  }
  // The spec declares facts for all 16 message types; make sure the loop
  // actually exercised a full-sized spec rather than an empty file.
  EXPECT_GE(checked, 70u);
}

TEST(CheckerTest, JsonOutputIsWellFormed) {
  std::vector<Diagnostic> diags = {
      {"src/core/a.cc", 3, "hotpath", "uses \"new\" on a hot path"},
      {"src/core/b.cc", 0, "protocol-flow", "line two\nline three"},
  };
  std::string json = FormatDiagnosticsJson(diags);
  EXPECT_NE(json.find("\"file\": \"src/core/a.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(json.find("\\\"new\\\""), std::string::npos);
  EXPECT_NE(json.find("line two\\nline three"), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
  EXPECT_EQ(FormatDiagnosticsJson({}), "[]\n");
}

}  // namespace
}  // namespace contjoin::check
