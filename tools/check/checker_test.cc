#include "checker.h"

#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace contjoin::check {
namespace {

std::string Fixture(const std::string& name) {
  return std::string(CONTJOIN_CHECK_TESTDATA) + "/" + name;
}

size_t CountRule(const std::vector<Diagnostic>& diags,
                 const std::string& rule) {
  return static_cast<size_t>(
      std::count_if(diags.begin(), diags.end(),
                    [&rule](const Diagnostic& d) { return d.rule == rule; }));
}

bool AnyMessageContains(const std::vector<Diagnostic>& diags,
                        const std::string& needle) {
  return std::any_of(diags.begin(), diags.end(),
                     [&needle](const Diagnostic& d) {
                       return d.message.find(needle) != std::string::npos;
                     });
}

TEST(CheckerTest, CleanFixtureHasNoFindings) {
  CheckConfig config;
  config.root = Fixture("clean");
  std::vector<Diagnostic> diags = RunChecks(config);
  for (const Diagnostic& d : diags) ADD_FAILURE() << FormatDiagnostic(d);
  EXPECT_TRUE(diags.empty());
}

TEST(CheckerTest, LayeringRuleFires) {
  CheckConfig config;
  config.root = Fixture("layering_bad");
  std::vector<Diagnostic> diags;
  CheckLayering(config, &diags);
  EXPECT_EQ(diags.size(), 3u);
  // Upward include from the bottom layer.
  EXPECT_TRUE(AnyMessageContains(diags, "layer 'src/common'"));
  // Sideways include chord -> query.
  EXPECT_TRUE(AnyMessageContains(diags, "layer 'src/chord'"));
  // Role module bypassing the seam.
  EXPECT_TRUE(AnyMessageContains(diags, "ProtocolContext seam"));
}

TEST(CheckerTest, MessagesRuleFires) {
  CheckConfig config;
  config.root = Fixture("messages_bad");
  std::vector<Diagnostic> diags;
  CheckMessages(config, &diags);
  EXPECT_EQ(CountRule(diags, "messages"), 8u);
  EXPECT_TRUE(AnyMessageContains(diags, "last enumerator is kAck"));
  EXPECT_TRUE(AnyMessageContains(diags, "kAlpha is tagged by 2"));
  EXPECT_TRUE(AnyMessageContains(diags, "kBeta has no payload struct"));
  EXPECT_TRUE(AnyMessageContains(diags, "kGamma has no payload struct"));
  EXPECT_TRUE(AnyMessageContains(diags, "kAlpha registered 2 times"));
  EXPECT_TRUE(AnyMessageContains(diags, "kGamma has no handler"));
  EXPECT_TRUE(AnyMessageContains(diags, "kAck has no handler"));
  EXPECT_TRUE(AnyMessageContains(diags, "unknown enumerator CqMsgType::kDelta"));
}

TEST(CheckerTest, CodecsRuleFires) {
  CheckConfig config;
  config.root = Fixture("codecs_bad");
  std::vector<Diagnostic> diags;
  CheckCodecs(config, &diags);
  EXPECT_EQ(CountRule(diags, "codecs"), 4u);
  EXPECT_TRUE(AnyMessageContains(diags, "kAlpha registered 2 times"));
  EXPECT_TRUE(AnyMessageContains(diags, "kBeta has no registered wire codec"));
  EXPECT_TRUE(
      AnyMessageContains(diags, "kDigest has no registered wire codec"));
  EXPECT_TRUE(
      AnyMessageContains(diags, "unknown enumerator CqMsgType::kGamma"));
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.file, "src/core/codec.cc") << FormatDiagnostic(d);
  }
}

TEST(CheckerTest, DeterminismRuleFires) {
  CheckConfig config;
  config.root = Fixture("determinism_bad");
  std::vector<Diagnostic> diags;
  CheckDeterminism(config, &diags);
  EXPECT_TRUE(AnyMessageContains(diags, "banned call 'rand('"));
  EXPECT_TRUE(AnyMessageContains(diags, "banned call 'srand('"));
  EXPECT_TRUE(AnyMessageContains(diags, "banned call 'system_clock::now'"));
  EXPECT_TRUE(AnyMessageContains(diags, "banned call 'time('"));
  // Two unwaived unordered iterations (direct member + alias-typed member);
  // the third loop carries an ordered-ok waiver and must not be flagged.
  EXPECT_TRUE(AnyMessageContains(diags, "container 'counts'"));
  EXPECT_TRUE(AnyMessageContains(diags, "container 'by_alias'"));
  EXPECT_EQ(CountRule(diags, "determinism"), 6u);
}

TEST(CheckerTest, LintConfigRuleFires) {
  CheckConfig config;
  config.root = Fixture("lint_bad");
  std::vector<Diagnostic> diags;
  CheckLintConfig(config, &diags);
  EXPECT_EQ(CountRule(diags, "lint-config"), 5u);
  EXPECT_TRUE(AnyMessageContains(diags, "'performance-*' is not enabled"));
  EXPECT_TRUE(
      AnyMessageContains(diags, "'bugprone-use-after-move' must be listed"));
}

TEST(CheckerTest, ShardSafetyRuleFires) {
  CheckConfig config;
  config.root = Fixture("shard_bad");
  std::vector<Diagnostic> diags;
  CheckShardSafety(config, &diags);
  // One mutable static and one RNG draw; the waived static, the waived
  // draw, the immutable statics, the static function and the non-role
  // helpers.cc static are all silent.
  EXPECT_EQ(CountRule(diags, "shard-safety"), 2u);
  EXPECT_TRUE(AnyMessageContains(diags, "mutable static data"));
  EXPECT_TRUE(AnyMessageContains(diags, "GetRng() draw"));
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.file, "src/core/rewriter.cc") << FormatDiagnostic(d);
  }
}

TEST(CheckerTest, CompileDbCoverageFires) {
  // A database missing dispatch.cc: it must be reported as unbuilt.
  std::string db_path =
      ::testing::TempDir() + "/contjoin_check_partial_db.json";
  {
    std::ofstream db(db_path);
    db << "[{\"directory\": \"/tmp\", \"command\": \"c++ -c\", "
          "\"file\": \"src/core/rewriter.cc\"},\n"
          " {\"directory\": \"/tmp\", \"command\": \"c++ -c\", "
          "\"file\": \"src/core/codec.cc\"}]\n";
  }
  CheckConfig config;
  config.root = Fixture("clean");
  config.compile_db = db_path;
  std::vector<Diagnostic> diags;
  CheckCompileDb(config, &diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].file, "src/core/dispatch.cc");
  EXPECT_EQ(diags[0].rule, "compile-db");
}

TEST(CheckerTest, DiagnosticsAreSortedAndStable) {
  CheckConfig config;
  config.root = Fixture("messages_bad");
  std::vector<Diagnostic> first = RunChecks(config);
  std::vector<Diagnostic> second = RunChecks(config);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(FormatDiagnostic(first[i]), FormatDiagnostic(second[i]));
  }
  for (size_t i = 1; i < first.size(); ++i) {
    EXPECT_LE(first[i - 1].file, first[i].file);
  }
}

// The real tree must satisfy every invariant the checker enforces: this is
// the same gate CI runs via the contjoin_check binary.
TEST(CheckerTest, RealSourceTreeIsClean) {
  CheckConfig config;
  config.root = CONTJOIN_SOURCE_ROOT;
  std::vector<Diagnostic> diags = RunChecks(config);
  for (const Diagnostic& d : diags) ADD_FAILURE() << FormatDiagnostic(d);
  EXPECT_TRUE(diags.empty());
}

}  // namespace
}  // namespace contjoin::check
