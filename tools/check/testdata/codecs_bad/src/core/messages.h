#ifndef FIXTURE_CODECS_BAD_CORE_MESSAGES_H_
#define FIXTURE_CODECS_BAD_CORE_MESSAGES_H_

#include <cstddef>

namespace fixture {

enum class CqMsgType : unsigned char {
  kAlpha,
  kBeta,
  kAck,
  kDigest,
};

inline constexpr size_t kCqMsgTypeCount =
    static_cast<size_t>(CqMsgType::kDigest) + 1;

}  // namespace fixture

#endif  // FIXTURE_CODECS_BAD_CORE_MESSAGES_H_
