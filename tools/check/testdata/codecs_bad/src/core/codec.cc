// Deliberately broken codec registry: kAlpha is registered twice, kBeta
// and kDigest are never registered, and kGamma is not a CqMsgType
// enumerator at all.
#include "core/messages.h"

namespace fixture {

using EncodeFn = void (*)();
using DecodeFn = void (*)();

void RegisterCodec(CqMsgType type, EncodeFn encode, DecodeFn decode);

void RegisterAllCodecs() {
  RegisterCodec(CqMsgType::kAlpha, nullptr, nullptr);
  RegisterCodec(CqMsgType::kAlpha, nullptr, nullptr);
  RegisterCodec(CqMsgType::kGamma, nullptr, nullptr);
  RegisterCodec(CqMsgType::kAck, nullptr, nullptr);
}

}  // namespace fixture
