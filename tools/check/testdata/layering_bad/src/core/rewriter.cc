// Violation: a role module bypassing the ProtocolContext seam.
#include "core/engine.h"

namespace fixture {

int Rewrite(int x) { return x; }

}  // namespace fixture
