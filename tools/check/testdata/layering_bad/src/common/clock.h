#ifndef FIXTURE_LAYERING_BAD_COMMON_CLOCK_H_
#define FIXTURE_LAYERING_BAD_COMMON_CLOCK_H_

// Violation: common is the bottom layer and must not reach up into core.
#include "core/engine.h"

#endif  // FIXTURE_LAYERING_BAD_COMMON_CLOCK_H_
