#ifndef FIXTURE_LAYERING_BAD_CHORD_NODE_H_
#define FIXTURE_LAYERING_BAD_CHORD_NODE_H_

// Violation: chord sits below query in the DAG and must not include it.
#include "query/parser.h"

#endif  // FIXTURE_LAYERING_BAD_CHORD_NODE_H_
