// Fixture: NOT a role module (stem "helpers" is not in RoleModuleStems),
// so its mutable static must not be flagged by shard-safety.

namespace fixture {

static int g_scratch = 0;

int Bump() { return ++g_scratch; }

}  // namespace fixture
