// Fixture: shard-safety violations inside a role module. Two findings are
// expected — the mutable static counter and the shared-RNG draw — while
// the waived static, the immutable statics, the static function and the
// static_cast must all pass.

namespace fixture {

static int g_handled = 0;             // Finding: mutable static data.
static const int kLimit = 8;          // Immutable: allowed.
static constexpr int kWindow = 4;     // Immutable: allowed.

// contjoin-check: shard-ok(fixture: guarded by the epoch barrier)
static long g_waived_total = 0;       // Waived: allowed.

static int Helper(int v) { return v + kLimit + kWindow; }

int Handle(int v) {
  g_handled += Helper(static_cast<int>(v));
  g_waived_total += v;
  int jitter = GetRng().Next() % 3;   // Finding: shared-RNG draw.
  // contjoin-check: shard-ok(fixture: waiver two lines above the draw)

  int waived = GetRng().Next() % 5;
  return g_handled + jitter + waived;
}

}  // namespace fixture
