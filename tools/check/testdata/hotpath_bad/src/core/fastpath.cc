// Hot-path fixture: DecodeFast is marked hot and violates every ban
// class; EncodeFast waives its allocation; SlowPath is unmarked, so the
// same constructs are fine there.
#include <memory>
#include <mutex>
#include <regex>
#include <string>

namespace fixture {

int Use(std::string s);

// contjoin-check: hot
int DecodeFast(const char* data, int size) {
  int* raw = new int(size);
  delete raw;
  auto scratch = std::make_shared<int>(size);
  std::regex pattern("a+");
  std::mutex mu;
  std::lock_guard<std::mutex> lk(mu);
  return Use(std::string(data)) + size + *scratch;
}

// contjoin-check: hot
int EncodeFast(int value) {
  // contjoin-check: hot-ok(cold error path, runs once per malformed frame)
  auto detail = std::make_unique<int>(value);
  return *detail;
}

// Unmarked: the hot-path bans do not apply off the hot path.
int SlowPath(int value) {
  auto buffer = std::make_unique<int>(value);
  std::string label("slow");
  return value + static_cast<int>(label.size());
}

}  // namespace fixture
