// Reliability layer for the protocol_bad tree: kAlpha and kBeta are
// critical, so every send edge for them must be armed.
#include "core/messages.h"

namespace fixture {

bool IsCritical(CqMsgType t) {
  switch (t) {
    case CqMsgType::kAlpha:
    case CqMsgType::kBeta:
      return true;
    default:
      return false;
  }
}

}  // namespace fixture
