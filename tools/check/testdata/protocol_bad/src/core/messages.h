#ifndef FIXTURE_PROTOCOL_BAD_CORE_MESSAGES_H_
#define FIXTURE_PROTOCOL_BAD_CORE_MESSAGES_H_

#include <cstddef>

namespace fixture {

enum class CqMsgType : unsigned char {
  kAlpha,
  kBeta,
  kAck,
  kDigest,
};

inline constexpr size_t kCqMsgTypeCount =
    static_cast<size_t>(CqMsgType::kDigest) + 1;

struct CqPayload {
  explicit CqPayload(CqMsgType t) : type(t) {}
  CqMsgType type;
};

struct AlphaPayload : CqPayload {
  AlphaPayload() : CqPayload(CqMsgType::kAlpha) {}
};

struct BetaPayload : CqPayload {
  BetaPayload() : CqPayload(CqMsgType::kBeta) {}
};

struct AckPayload : CqPayload {
  AckPayload() : CqPayload(CqMsgType::kAck) {}
};

struct DigestPayload : CqPayload {
  DigestPayload() : CqPayload(CqMsgType::kDigest) {}
};

}  // namespace fixture

#endif  // FIXTURE_PROTOCOL_BAD_CORE_MESSAGES_H_
