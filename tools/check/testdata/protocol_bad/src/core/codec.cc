// Codec table for the protocol_bad tree: kDigest has no codec, so it is
// simulator-only — yet the rewriter sends it.
#include "core/messages.h"

namespace fixture {

using EncodeFn = void (*)();
using DecodeFn = void (*)();

void RegisterCodec(CqMsgType type, EncodeFn encode, DecodeFn decode);

void RegisterAllCodecs() {
  RegisterCodec(CqMsgType::kAlpha, nullptr, nullptr);
  RegisterCodec(CqMsgType::kBeta, nullptr, nullptr);
  RegisterCodec(CqMsgType::kAck, nullptr, nullptr);
}

}  // namespace fixture
