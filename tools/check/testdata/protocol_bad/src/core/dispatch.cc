// Dispatch table for the protocol_bad tree: kAck is deliberately left
// without a handler even though the rewriter sends it.
#include "core/messages.h"

namespace fixture {

namespace rewriter {
void HandleAlpha();
}
namespace evaluator {
void HandleBeta();
}
namespace subscriber {
void HandleDigest();
}

using Handler = void (*)();

void Register(CqMsgType type, Handler handler);

void RegisterAll() {
  Register(CqMsgType::kAlpha, rewriter::HandleAlpha);
  Register(CqMsgType::kBeta, evaluator::HandleBeta);
  Register(CqMsgType::kDigest, subscriber::HandleDigest);
}

}  // namespace fixture
