// Send sites for the protocol_bad tree. Three deliberate violations:
// kBeta is critical but sent without arming the reliability wrapper,
// kAck is sent but no handler is registered for it, and kDigest has no
// codec (simulator-only) yet reaches the transport seam here.
#include <memory>

#include "core/messages.h"

namespace fixture {

void Send(int target, std::shared_ptr<CqPayload> payload);
void Arm(std::shared_ptr<CqPayload> payload);

void SendAlpha(int target) {
  auto payload = std::make_shared<AlphaPayload>();
  Arm(payload);
  Send(target, payload);
}

void SendBeta(int target) {
  auto payload = std::make_shared<BetaPayload>();
  Send(target, payload);
}

void SendAck(int target) {
  auto payload = std::make_shared<AckPayload>();
  Send(target, payload);
}

void SendDigest(int target) {
  auto payload = std::make_shared<DigestPayload>();
  Send(target, payload);
}

}  // namespace fixture
