#include <chrono>
#include <cstdlib>
#include <ctime>

#include "core/state.h"

namespace fixture {

long Bad(State& state) {
  std::srand(42);
  int r = std::rand();
  auto wall = std::chrono::system_clock::now();
  long stamp = time(nullptr);
  long sum = r + stamp + wall.time_since_epoch().count();
  for (const auto& [key, value] : state.counts) {
    sum += value;
  }
  for (const auto& [key, value] : state.by_alias) {
    sum += value;
  }
  // contjoin-check: ordered-ok(fixture: commutative sum, waiver honoured)
  for (const auto& [key, value] : state.counts) {
    sum += value;
  }
  return sum;
}

}  // namespace fixture
