#ifndef FIXTURE_DETERMINISM_BAD_CORE_STATE_H_
#define FIXTURE_DETERMINISM_BAD_CORE_STATE_H_

#include <string>
#include <unordered_map>

namespace fixture {

using CountMap = std::unordered_map<std::string, int>;

struct State {
  std::unordered_map<std::string, int> counts;
  CountMap by_alias;
};

}  // namespace fixture

#endif  // FIXTURE_DETERMINISM_BAD_CORE_STATE_H_
