// Shard-escape fixture: a role module whose functions reach across node
// shards. Violations: a StateOf(<other node>) write outside any deferred
// closure, an unordered-container iteration feeding a send directly, and
// one feeding a send through a helper call (one hop).
#include <unordered_map>

namespace fixture {

struct Node {};
struct State {
  int count = 0;
};
struct Callback {};

struct Ctx {
  State& StateOf(Node& n);
  void Transmit(Node& n, Callback cb);
  void ScheduleAfter(int delay, Callback cb);
  void Send(int target, int payload);
};

// BAD: writes another node's state on this shard.
void Evaluate(Ctx& ctx, Node& node, Node& peer) {
  ctx.StateOf(node).count += 1;
  ctx.StateOf(peer).count += 1;
}

// OK: the closure handed to Transmit executes on the destination shard.
void Forward(Ctx& ctx, Node& node, Node& peer) {
  ctx.Transmit(peer, [&ctx, &peer] { ctx.StateOf(peer).count += 1; });
}

// BAD: hash-table order reaches the wire directly.
void Flush(Ctx& ctx, Node& node) {
  std::unordered_map<int, int> pending;
  for (const auto& entry : pending) {
    ctx.Send(entry.first, entry.second);
  }
}

void EmitOne(Ctx& ctx, int key, int value) { ctx.Send(key, value); }

// BAD: the send lives one helper call away, but the order still leaks.
void FlushViaHelper(Ctx& ctx, Node& node) {
  std::unordered_map<int, int> backlog;
  for (const auto& entry : backlog) {
    EmitOne(ctx, entry.first, entry.second);
  }
}

// OK: pure aggregation, nothing reaches the wire.
int Count(Ctx& ctx, Node& node) {
  std::unordered_map<int, int> tallies;
  int total = 0;
  for (const auto& entry : tallies) total += entry.second;
  return total;
}

// Waived: acks are idempotent and order-insensitive.
void FlushWaived(Ctx& ctx, Node& node) {
  std::unordered_map<int, int> acked;
  // contjoin-check: shard-ok(idempotent acks, order-insensitive)
  for (const auto& entry : acked) {
    ctx.Send(entry.first, entry.second);
  }
}

}  // namespace fixture
