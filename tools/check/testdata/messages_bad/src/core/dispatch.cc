#include "core/messages.h"

namespace fixture {

using Handler = void (*)();

void Register(CqMsgType type, Handler handler);

void RegisterAll() {
  // Violations: kAlpha registered twice, kGamma never, and kDelta is not
  // an enumerator at all.
  Register(CqMsgType::kAlpha, nullptr);
  Register(CqMsgType::kAlpha, nullptr);
  Register(CqMsgType::kBeta, nullptr);
  Register(CqMsgType::kDelta, nullptr);
}

}  // namespace fixture
