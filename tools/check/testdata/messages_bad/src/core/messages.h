#ifndef FIXTURE_MESSAGES_BAD_CORE_MESSAGES_H_
#define FIXTURE_MESSAGES_BAD_CORE_MESSAGES_H_

#include <cstddef>

namespace fixture {

enum class CqMsgType : unsigned char {
  kAlpha,
  kBeta,
  kGamma,
  kAck,
};

// Violation: derived from kBeta instead of the last enumerator kAck.
inline constexpr size_t kCqMsgTypeCount =
    static_cast<size_t>(CqMsgType::kBeta) + 1;

struct CqPayload {
  explicit CqPayload(CqMsgType t) : type(t) {}
  CqMsgType type;
};

struct AlphaPayload : CqPayload {
  AlphaPayload() : CqPayload(CqMsgType::kAlpha) {}
};

// Violation: kAlpha tagged a second time; kBeta and kGamma never tagged.
struct AlphaAgainPayload : CqPayload {
  AlphaAgainPayload() : CqPayload(CqMsgType::kAlpha) {}
};

// Properly tagged, but never registered in dispatch.cc: the ack type must
// still be flagged as "has no handler".
struct AckPayload : CqPayload {
  AckPayload() : CqPayload(CqMsgType::kAck) {}
};

}  // namespace fixture

#endif  // FIXTURE_MESSAGES_BAD_CORE_MESSAGES_H_
