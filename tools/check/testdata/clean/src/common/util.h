#ifndef FIXTURE_CLEAN_COMMON_UTIL_H_
#define FIXTURE_CLEAN_COMMON_UTIL_H_

namespace fixture {
inline int Identity(int x) { return x; }
}  // namespace fixture

#endif  // FIXTURE_CLEAN_COMMON_UTIL_H_
