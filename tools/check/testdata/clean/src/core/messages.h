#ifndef FIXTURE_CLEAN_CORE_MESSAGES_H_
#define FIXTURE_CLEAN_CORE_MESSAGES_H_

#include <cstddef>

#include "common/util.h"

namespace fixture {

enum class CqMsgType : unsigned char {
  kAlpha,
  kBeta,
};

inline constexpr size_t kCqMsgTypeCount =
    static_cast<size_t>(CqMsgType::kBeta) + 1;

struct CqPayload {
  explicit CqPayload(CqMsgType t) : type(t) {}
  CqMsgType type;
};

struct AlphaPayload : CqPayload {
  AlphaPayload() : CqPayload(CqMsgType::kAlpha) {}
};

struct BetaPayload : CqPayload {
  BetaPayload() : CqPayload(CqMsgType::kBeta) {}
};

}  // namespace fixture

#endif  // FIXTURE_CLEAN_CORE_MESSAGES_H_
