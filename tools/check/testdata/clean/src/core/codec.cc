// The wire-codec registry for the fixture tree: every CqMsgType enumerator
// gets exactly one Encode/Decode registration.
#include "core/messages.h"

namespace fixture {

using EncodeFn = void (*)();
using DecodeFn = void (*)();

void RegisterCodec(CqMsgType type, EncodeFn encode, DecodeFn decode);

void RegisterAllCodecs() {
  RegisterCodec(CqMsgType::kAlpha, nullptr, nullptr);
  RegisterCodec(CqMsgType::kBeta, nullptr, nullptr);
  RegisterCodec(CqMsgType::kAck, nullptr, nullptr);
  RegisterCodec(CqMsgType::kDigest, nullptr, nullptr);
}

}  // namespace fixture
