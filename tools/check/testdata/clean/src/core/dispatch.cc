#include "core/messages.h"

namespace fixture {

using Handler = void (*)();

void Register(CqMsgType type, Handler handler);

void RegisterAll() {
  Register(CqMsgType::kAlpha, nullptr);
  Register(CqMsgType::kBeta, nullptr);
  Register(CqMsgType::kAck, nullptr);
  Register(CqMsgType::kDigest, nullptr);
}

}  // namespace fixture
