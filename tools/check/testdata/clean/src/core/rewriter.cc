// A role module that plays by the rules: same-layer includes plus lower
// layers only, no core/engine.h, and a send edge that matches the
// checked-in protocol.spec.
#include <memory>

#include "common/util.h"
#include "core/messages.h"

namespace fixture {

void Send(int target, std::shared_ptr<CqPayload> payload);

int Rewrite(int x) { return Identity(x) + 1; }

void ForwardAlpha(int target) {
  auto payload = std::make_shared<AlphaPayload>();
  Send(target, payload);
}

}  // namespace fixture
