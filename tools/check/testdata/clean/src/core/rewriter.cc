// A role module that plays by the rules: same-layer includes plus lower
// layers only, no core/engine.h.
#include "common/util.h"
#include "core/messages.h"

namespace fixture {

int Rewrite(int x) { return Identity(x) + 1; }

}  // namespace fixture
