#include "symbols.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

namespace contjoin::check {

namespace fs = std::filesystem;

namespace {

bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

size_t SkipSpaces(const std::string& text, size_t pos) {
  while (pos < text.size() && IsSpace(text[pos])) ++pos;
  return pos;
}

/// Offset of the first non-space character at or before `pos` going
/// backwards; npos when only whitespace precedes.
size_t RSkipSpaces(const std::string& text, size_t pos) {
  while (pos != static_cast<size_t>(-1) && IsSpace(text[pos])) --pos;
  return pos;
}

const std::set<std::string>& NonCallKeywords() {
  static const std::set<std::string> kWords = {
      "if",       "for",     "while",         "switch",  "catch",
      "return",   "sizeof",  "alignof",       "decltype", "constexpr",
      "static_assert",       "noexcept",      "throw",   "operator",
      "new",      "delete",  "case",          "typeid",  "alignas",
      "co_await", "co_return", "co_yield",    "defined", "assert",
      "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
  };
  return kWords;
}

}  // namespace

// --- Text utilities -----------------------------------------------------------

std::string ReadFileText(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) lines.push_back(current);
  return lines;
}

std::string StripComments(const std::string& text) {
  std::string out = text;
  size_t i = 0;
  while (i + 1 < out.size()) {
    if (out[i] == '/' && out[i + 1] == '/') {
      while (i < out.size() && out[i] != '\n') out[i++] = ' ';
    } else if (out[i] == '/' && out[i + 1] == '*') {
      out[i] = out[i + 1] = ' ';
      i += 2;
      while (i + 1 < out.size() && !(out[i] == '*' && out[i + 1] == '/')) {
        if (out[i] != '\n') out[i] = ' ';
        ++i;
      }
      if (i + 1 < out.size()) {
        out[i] = out[i + 1] = ' ';
        i += 2;
      }
    } else {
      ++i;
    }
  }
  return out;
}

std::string BlankCommentsAndStrings(const std::string& text) {
  std::string out = text;
  const size_t n = out.size();
  auto blank = [&out, n](size_t from, size_t to) {
    for (size_t k = from; k < to && k < n; ++k) {
      if (out[k] != '\n') out[k] = ' ';
    }
  };
  size_t i = 0;
  while (i < n) {
    char c = out[i];
    if (c == '/' && i + 1 < n && out[i + 1] == '/') {
      size_t j = i;
      while (j < n && out[j] != '\n') ++j;
      blank(i, j);
      i = j;
    } else if (c == '/' && i + 1 < n && out[i + 1] == '*') {
      size_t j = i + 2;
      while (j + 1 < n && !(out[j] == '*' && out[j + 1] == '/')) ++j;
      size_t end = j + 1 < n ? j + 2 : n;
      blank(i, end);
      i = end;
    } else if (c == '"') {
      if (i > 0 && out[i - 1] == 'R') {
        // Raw string R"delim( ... )delim": blank everything between the
        // outer quotes (kept, so the token still reads as one literal).
        size_t d0 = i + 1;
        size_t j = d0;
        while (j < n && out[j] != '(') ++j;
        std::string closer = ")" + out.substr(d0, j - d0) + "\"";
        size_t endpos = out.find(closer, j);
        size_t end = endpos == std::string::npos ? n : endpos + closer.size();
        blank(i + 1, end > i + 1 ? end - 1 : end);
        i = end;
      } else {
        size_t j = i + 1;
        while (j < n && out[j] != '"') {
          if (out[j] == '\\') ++j;
          ++j;
        }
        size_t end = j < n ? j + 1 : n;
        blank(i + 1, end > i + 1 ? end - 1 : end);
        i = end;
      }
    } else if (c == '\'') {
      // A quote right after an alphanumeric is a digit separator
      // (1'000'000) or a literal suffix, not a character literal.
      if (i > 0 && std::isalnum(static_cast<unsigned char>(out[i - 1]))) {
        ++i;
        continue;
      }
      size_t j = i + 1;
      while (j < n && out[j] != '\'') {
        if (out[j] == '\\') ++j;
        ++j;
      }
      size_t end = j < n ? j + 1 : n;
      blank(i + 1, end > i + 1 ? end - 1 : end);
      i = end;
    } else {
      ++i;
    }
  }
  return out;
}

std::string LayerOf(const std::string& rel_path) {
  const std::string prefix = "src/";
  if (rel_path.rfind(prefix, 0) != 0) return "";
  size_t start = prefix.size();
  size_t slash = rel_path.find('/', start);
  if (slash == std::string::npos) return "";
  return rel_path.substr(start, slash - start);
}

std::string StemOf(const std::string& rel_path) {
  return fs::path(rel_path).stem().string();
}

// contjoin-check: hot
size_t LineOfOffset(const std::string& text, size_t offset) {
  size_t line = 1;
  for (size_t i = 0; i < offset && i < text.size(); ++i) {
    if (text[i] == '\n') ++line;
  }
  return line;
}

// contjoin-check: hot
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// contjoin-check: hot
size_t MatchBracket(const std::string& text, size_t open, char open_ch,
                    char close_ch) {
  int depth = 0;
  for (size_t i = open; i < text.size(); ++i) {
    if (text[i] == open_ch) ++depth;
    if (text[i] == close_ch && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

// contjoin-check: hot
size_t FindWordToken(const std::string& text, size_t pos,
                     const std::string& token, bool allow_member) {
  if (token.empty()) return std::string::npos;
  const bool tail_ident = IsIdentChar(token[token.size() - 1]);
  while ((pos = text.find(token, pos)) != std::string::npos) {
    bool word_start = pos == 0 || (!IsIdentChar(text[pos - 1]) &&
                                   (allow_member || text[pos - 1] != '.'));
    size_t end = pos + token.size();
    bool word_end = !tail_ident || end >= text.size() ||
                    !IsIdentChar(text[end]);
    if (word_start && word_end) return pos;
    pos = end;
  }
  return std::string::npos;
}

std::string TrailingIdentifier(const std::string& expr) {
  size_t end = expr.size();
  while (end > 0 && IsSpace(expr[end - 1])) --end;
  if (end > 0 && (expr[end - 1] == ')' || expr[end - 1] == ']')) return "";
  size_t start = end;
  while (start > 0 && IsIdentChar(expr[start - 1])) --start;
  return expr.substr(start, end - start);
}

bool HasWaiverNeedle(const std::vector<std::string>& lines, size_t line_index,
                     const std::string& needle) {
  size_t first = line_index >= 2 ? line_index - 2 : 0;
  for (size_t i = first; i <= line_index && i < lines.size(); ++i) {
    if (lines[i].find(needle) != std::string::npos) return true;
  }
  return false;
}

// --- File loading -------------------------------------------------------------

std::vector<SourceFile> ListSources(const std::string& root) {
  std::vector<SourceFile> out;
  std::vector<fs::path> paths;
  for (const char* sub : {"src", "tools"}) {
    fs::path dir = fs::path(root) / sub;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      fs::path p = entry.path();
      if (p.extension() != ".h" && p.extension() != ".cc") continue;
      // Fixture trees carry deliberate violations; never lint them as
      // part of the enclosing tree. The exclusion is root-relative so a
      // fixture tree can itself be checked as a root.
      std::string rel = fs::relative(p, fs::path(root)).generic_string();
      if (("/" + rel).find("/testdata/") != std::string::npos) continue;
      paths.push_back(p);
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) {
    SourceFile f;
    f.rel_path = fs::relative(p, fs::path(root)).generic_string();
    f.text = ReadFileText(p.string());
    f.lines = SplitLines(f.text);
    f.code = BlankCommentsAndStrings(f.text);
    out.push_back(std::move(f));
  }
  return out;
}

// --- Function / call extraction -----------------------------------------------

namespace {

/// Reads the identifier ending at `end` (exclusive, after skipping
/// trailing whitespace backwards); sets `start` to its first character.
/// Returns empty when `end` is not preceded by an identifier.
std::string IdentEndingAt(const std::string& code, size_t end, size_t* start) {
  size_t last = RSkipSpaces(code, end == 0 ? static_cast<size_t>(-1) : end - 1);
  if (last == static_cast<size_t>(-1) || !IsIdentChar(code[last])) return "";
  size_t first = last;
  while (first > 0 && IsIdentChar(code[first - 1])) --first;
  *start = first;
  return code.substr(first, last - first + 1);
}

/// Like IdentEndingAt, but first backs over one template argument list
/// (`Foo<A, B>` called as `Foo<A, B>(x)`), so template call sites still
/// resolve to their base name.
std::string CallNameBefore(const std::string& code, size_t paren,
                           size_t* start) {
  size_t last = RSkipSpaces(code, paren == 0 ? static_cast<size_t>(-1)
                                             : paren - 1);
  if (last == static_cast<size_t>(-1)) return "";
  if (code[last] == '>') {
    // Back over <...>, counting nesting. A lone `a > b` comparison never
    // balances, in which case this is not a call name at all.
    int depth = 0;
    size_t i = last;
    while (true) {
      if (code[i] == '>') ++depth;
      if (code[i] == '<' && --depth == 0) break;
      if (i == 0) return "";
      --i;
    }
    return IdentEndingAt(code, i, start);
  }
  return IdentEndingAt(code, last + 1, start);
}

/// Parses the tail of a potential function definition after the closing
/// parameter paren. On success returns true and sets body_begin/body_end.
bool ParseDefinitionTail(const std::string& code, size_t after_params,
                         size_t* body_begin, size_t* body_end) {
  size_t j = after_params;
  while (true) {
    j = SkipSpaces(code, j);
    if (j >= code.size()) return false;
    char c = code[j];
    if (c == '{') {
      size_t end = MatchBracket(code, j, '{', '}');
      if (end == std::string::npos) return false;
      *body_begin = j;
      *body_end = end;
      return true;
    }
    if (c == ';' || c == '=' || c == ',' || c == ')') return false;
    if (c == ':') {
      if (j + 1 < code.size() && code[j + 1] == ':') return false;
      // Constructor initializer list: `: name(..) , name{..} ... {`.
      ++j;
      while (true) {
        j = SkipSpaces(code, j);
        // Initializer name, possibly qualified/templated.
        size_t name_start = j;
        while (j < code.size() &&
               (IsIdentChar(code[j]) || code[j] == ':')) {
          ++j;
        }
        if (j == name_start) return false;
        j = SkipSpaces(code, j);
        if (j < code.size() && code[j] == '<') {
          size_t end = MatchBracket(code, j, '<', '>');
          if (end == std::string::npos) return false;
          j = SkipSpaces(code, end);
        }
        if (j >= code.size() || (code[j] != '(' && code[j] != '{')) {
          return false;
        }
        size_t end = MatchBracket(code, j, code[j], code[j] == '(' ? ')' : '}');
        if (end == std::string::npos) return false;
        j = SkipSpaces(code, end);
        while (j < code.size() && code[j] == '.') ++j;  // Pack expansion.
        j = SkipSpaces(code, j);
        if (j < code.size() && code[j] == ',') {
          ++j;
          continue;
        }
        if (j < code.size() && code[j] == '{') {
          size_t body_close = MatchBracket(code, j, '{', '}');
          if (body_close == std::string::npos) return false;
          *body_begin = j;
          *body_end = body_close;
          return true;
        }
        return false;
      }
    }
    if (c == '-' && j + 1 < code.size() && code[j + 1] == '>') {
      // Trailing return type: skip to the body or terminator.
      j += 2;
      while (j < code.size() && code[j] != '{' && code[j] != ';') {
        if (code[j] == '<') {
          size_t end = MatchBracket(code, j, '<', '>');
          if (end == std::string::npos) return false;
          j = end;
        } else {
          ++j;
        }
      }
      continue;
    }
    if (IsIdentChar(c)) {
      size_t word_start = j;
      while (j < code.size() && IsIdentChar(code[j])) ++j;
      std::string word = code.substr(word_start, j - word_start);
      if (word == "const" || word == "override" || word == "final" ||
          word == "mutable" || word == "try") {
        continue;
      }
      if (word == "noexcept") {
        size_t k = SkipSpaces(code, j);
        if (k < code.size() && code[k] == '(') {
          size_t end = MatchBracket(code, k, '(', ')');
          if (end == std::string::npos) return false;
          j = end;
        }
        continue;
      }
      return false;  // Any other token: a declaration or expression.
    }
    return false;
  }
}

/// First parameter declared as [const] [chord::]Node& / Node* inside the
/// parameter list text.
std::string OwnerParamOf(const std::string& params) {
  size_t pos = 0;
  while ((pos = FindWordToken(params, pos, "Node")) != std::string::npos) {
    size_t j = SkipSpaces(params, pos + 4);
    if (j < params.size() && (params[j] == '&' || params[j] == '*')) {
      j = SkipSpaces(params, j + 1);
      size_t start = j;
      while (j < params.size() && IsIdentChar(params[j])) ++j;
      if (j > start) return params.substr(start, j - start);
    }
    pos += 4;
  }
  return "";
}

void ExtractBodySymbols(const std::string& code, FunctionDef* fn) {
  // Call sites: every identifier immediately preceding a '(' inside the
  // body, template argument lists skipped, control keywords excluded.
  for (size_t i = fn->body_begin; i < fn->body_end; ++i) {
    if (code[i] != '(') continue;
    size_t start = 0;
    std::string name = CallNameBefore(code, i, &start);
    if (name.empty() || NonCallKeywords().count(name) > 0) continue;
    fn->calls.push_back(CallSite{name, i});
  }
  // Payload creations: make_shared<T>(...) / make_unique<T>(...).
  for (const char* maker : {"make_shared", "make_unique"}) {
    const size_t maker_len = std::string(maker).size();
    size_t pos = fn->body_begin;
    while ((pos = FindWordToken(code, pos, maker)) != std::string::npos &&
           pos < fn->body_end) {
      const size_t maker_pos = pos;
      size_t open = SkipSpaces(code, pos + maker_len);
      pos = maker_pos + maker_len;
      if (open >= fn->body_end || code[open] != '<') continue;
      size_t close = MatchBracket(code, open, '<', '>');
      if (close == std::string::npos) continue;
      // First template argument, last `::` component.
      std::string arg = code.substr(open + 1, close - open - 2);
      size_t comma = arg.find(',');
      if (comma != std::string::npos) arg = arg.substr(0, comma);
      size_t sep = arg.rfind("::");
      if (sep != std::string::npos) arg = arg.substr(sep + 2);
      // Trim whitespace.
      size_t b = 0;
      while (b < arg.size() && IsSpace(arg[b])) ++b;
      size_t e = arg.size();
      while (e > b && IsSpace(arg[e - 1])) --e;
      PayloadCreation creation;
      creation.type_name = arg.substr(b, e - b);
      creation.offset = maker_pos;
      size_t call_open = SkipSpaces(code, close);
      if (call_open < fn->body_end && code[call_open] == '(') {
        size_t call_close = MatchBracket(code, call_open, '(', ')');
        if (call_close != std::string::npos) {
          creation.args =
              code.substr(call_open + 1, call_close - call_open - 2);
        }
      }
      fn->creations.push_back(std::move(creation));
      pos = close;
    }
  }
  std::sort(fn->creations.begin(), fn->creations.end(),
            [](const PayloadCreation& a, const PayloadCreation& b) {
              return a.offset < b.offset;
            });
}

void ExtractFunctions(size_t file_index, const SourceFile& f,
                      SymbolIndex* index) {
  const std::string& code = f.code;
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i] != '(') continue;
    size_t name_start = 0;
    std::string name = IdentEndingAt(code, i, &name_start);
    if (name.empty() || NonCallKeywords().count(name) > 0) continue;
    if (name == "if" || name == "while") continue;
    size_t params_end = MatchBracket(code, i, '(', ')');
    if (params_end == std::string::npos) continue;
    size_t body_begin = 0, body_end = 0;
    if (!ParseDefinitionTail(code, params_end, &body_begin, &body_end)) {
      continue;
    }
    FunctionDef fn;
    fn.file = file_index;
    fn.name = name;
    fn.name_offset = name_start;
    fn.line = LineOfOffset(code, name_start);
    fn.params_begin = i;
    fn.params_end = params_end;
    fn.body_begin = body_begin;
    fn.body_end = body_end;
    fn.owner_param = OwnerParamOf(code.substr(i + 1, params_end - i - 2));
    ExtractBodySymbols(code, &fn);
    index->functions.push_back(std::move(fn));
    // Do NOT jump past the body: inline methods of a class parsed as a
    // macro-style "function" (e.g. TEST(...) bodies) and nested local
    // definitions must still be indexed; lambdas have no preceding
    // identifier and naturally attribute to their enclosing function.
  }
}

// --- Tree-wide declarations ---------------------------------------------------

/// After a type, accept `*`/`&` then an identifier that is a variable
/// (terminated by ; = { , or a closing paren — not an opening paren,
/// which would make it a function name).
void CaptureVarName(const std::string& text, size_t pos,
                    std::set<std::string>* names) {
  while (pos < text.size() &&
         (IsSpace(text[pos]) || text[pos] == '*' || text[pos] == '&')) {
    ++pos;
  }
  size_t start = pos;
  while (pos < text.size() && IsIdentChar(text[pos])) ++pos;
  if (pos == start) return;
  std::string name = text.substr(start, pos - start);
  pos = SkipSpaces(text, pos);
  if (pos < text.size() && (text[pos] == ';' || text[pos] == '=' ||
                            text[pos] == '{' || text[pos] == ',' ||
                            text[pos] == ')')) {
    names->insert(name);
  }
}

void CollectUnorderedNames(const std::vector<SourceFile>& files,
                           std::set<std::string>* names) {
  std::set<std::string> aliases;
  // Pass A: using-aliases of unordered containers.
  for (const SourceFile& f : files) {
    size_t pos = 0;
    while ((pos = FindWordToken(f.code, pos, "using")) != std::string::npos) {
      size_t j = SkipSpaces(f.code, pos + 5);
      pos += 5;
      size_t alias_start = j;
      while (j < f.code.size() && IsIdentChar(f.code[j])) ++j;
      if (j == alias_start) continue;
      std::string alias = f.code.substr(alias_start, j - alias_start);
      j = SkipSpaces(f.code, j);
      if (j >= f.code.size() || f.code[j] != '=') continue;
      j = SkipSpaces(f.code, j + 1);
      if (f.code.compare(j, 5, "std::") == 0) j = SkipSpaces(f.code, j + 5);
      if (f.code.compare(j, 13, "unordered_map") == 0 ||
          f.code.compare(j, 13, "unordered_set") == 0) {
        size_t open = f.code.find('<', j);
        if (open != std::string::npos) aliases.insert(alias);
      }
    }
  }
  for (const SourceFile& f : files) {
    const std::string& text = f.code;
    // Pass B1: direct unordered_map<...> / unordered_set<...> declarations.
    for (const char* kind : {"unordered_map", "unordered_set"}) {
      size_t pos = 0;
      while ((pos = FindWordToken(text, pos, kind)) != std::string::npos) {
        size_t j = SkipSpaces(text, pos + std::string(kind).size());
        pos = j;
        if (j >= text.size() || text[j] != '<') continue;
        size_t end = MatchBracket(text, j, '<', '>');
        if (end == std::string::npos) continue;
        CaptureVarName(text, end, names);
        pos = end;
      }
    }
    // Pass B2: declarations via a collected alias (possibly qualified).
    for (const std::string& alias : aliases) {
      size_t pos = 0;
      while ((pos = text.find(alias, pos)) != std::string::npos) {
        size_t end = pos + alias.size();
        bool word_start = pos == 0 || !IsIdentChar(text[pos - 1]);
        bool word_end = end >= text.size() || !IsIdentChar(text[end]);
        if (word_start && word_end) CaptureVarName(text, end, names);
        pos = end;
      }
    }
  }
}

/// CqMsgType enumerators (identifiers starting with 'k' inside the enum
/// body), in declaration order.
std::vector<std::string> ParseMsgEnums(const std::string& code) {
  std::vector<std::string> enums;
  size_t enum_pos = code.find("enum class CqMsgType");
  if (enum_pos == std::string::npos) return enums;
  size_t open = code.find('{', enum_pos);
  if (open == std::string::npos) return enums;
  size_t close = MatchBracket(code, open, '{', '}');
  if (close == std::string::npos) return enums;
  size_t i = open + 1;
  while (i < close) {
    if (code[i] == 'k' && (i == 0 || !IsIdentChar(code[i - 1]))) {
      size_t j = i;
      while (j < close && IsIdentChar(code[j])) ++j;
      if (j > i + 1) enums.push_back(code.substr(i, j - i));
      i = j;
    } else {
      ++i;
    }
  }
  return enums;
}

/// Payload struct -> ordered CqMsgType tags: every `CqMsgType::kX` inside
/// a `CqPayload(...)` constructor argument list is attributed to the most
/// recently declared struct.
void ParsePayloadTags(const std::string& code,
                      std::map<std::string, std::vector<std::string>>* tags) {
  std::string current_struct;
  size_t struct_pos = 0;
  std::vector<std::pair<size_t, std::string>> structs;
  while ((struct_pos = FindWordToken(code, struct_pos, "struct")) !=
         std::string::npos) {
    size_t j = SkipSpaces(code, struct_pos + 6);
    size_t start = j;
    while (j < code.size() && IsIdentChar(code[j])) ++j;
    if (j > start) structs.emplace_back(struct_pos, code.substr(start, j - start));
    struct_pos = j;
  }
  size_t pos = 0;
  while ((pos = FindWordToken(code, pos, "CqPayload")) != std::string::npos) {
    size_t open = SkipSpaces(code, pos + 9);
    size_t token_pos = pos;
    pos = open;
    if (open >= code.size() || code[open] != '(') continue;
    size_t close = MatchBracket(code, open, '(', ')');
    if (close == std::string::npos) continue;
    // Owning struct: last struct declared before this constructor.
    for (auto it = structs.rbegin(); it != structs.rend(); ++it) {
      if (it->first < token_pos) {
        current_struct = it->second;
        break;
      }
    }
    if (current_struct.empty() || current_struct == "CqPayload") {
      pos = close;
      continue;
    }
    size_t i = open;
    while ((i = code.find("CqMsgType::", i)) != std::string::npos &&
           i < close) {
      size_t j = i + 11;
      size_t start = j;
      while (j < code.size() && IsIdentChar(code[j])) ++j;
      if (j > start) {
        (*tags)[current_struct].push_back(code.substr(start, j - start));
      }
      i = j;
    }
    pos = close;
  }
}

}  // namespace

SymbolIndex BuildSymbolIndex(const std::string& root) {
  SymbolIndex index;
  index.files = ListSources(root);
  index.functions_by_file.resize(index.files.size());
  for (size_t fi = 0; fi < index.files.size(); ++fi) {
    ExtractFunctions(fi, index.files[fi], &index);
  }
  for (size_t i = 0; i < index.functions.size(); ++i) {
    index.functions_by_name[index.functions[i].name].push_back(i);
    index.functions_by_file[index.functions[i].file].push_back(i);
  }
  CollectUnorderedNames(index.files, &index.unordered_names);
  for (const SourceFile& f : index.files) {
    if (f.rel_path == "src/core/messages.h") {
      index.msg_enums = ParseMsgEnums(f.code);
      ParsePayloadTags(f.code, &index.payload_tags);
    }
  }
  return index;
}

}  // namespace contjoin::check
