#include "checker.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <utility>

namespace contjoin::check {

namespace fs = std::filesystem;

namespace {

// --- Layer DAG ----------------------------------------------------------------
//
// Allowed include targets per src/ layer. A layer may always include
// itself; anything else must be listed here. Adding a directory under
// src/ requires teaching this table its place in the DAG — that is the
// point: the architecture changes only by explicit decision.

const std::map<std::string, std::set<std::string>>& AllowedDeps() {
  static const std::map<std::string, std::set<std::string>> kDeps = {
      {"common", {}},
      {"relational", {"common"}},
      {"query", {"common", "relational"}},
      {"sim", {"common"}},
      {"faults", {"common", "sim"}},
      {"chord", {"common", "sim", "faults"}},
      {"core", {"common", "relational", "query", "sim", "faults", "chord"}},
      {"workload",
       {"common", "relational", "query", "sim", "faults", "chord", "core"}},
      {"reference",
       {"common", "relational", "query", "sim", "faults", "chord", "core"}},
      {"serving",
       {"common", "relational", "query", "sim", "faults", "chord", "core",
        "workload"}},
  };
  return kDeps;
}

/// Protocol role modules: these reach shared engine state only through the
/// ProtocolContext seam, so the engine facade header is off-limits.
const std::set<std::string>& RoleModuleStems() {
  static const std::set<std::string> kStems = {
      "rewriter", "evaluator", "subscriber", "mw_protocol", "otj_protocol",
      "reliability"};
  return kStems;
}

// --- File plumbing ------------------------------------------------------------

struct SourceFile {
  std::string rel_path;  // Relative to the root, '/'-separated.
  std::string text;
  std::vector<std::string> lines;
};

std::string ReadFileText(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) lines.push_back(current);
  return lines;
}

/// Every .h/.cc under <root>/src, sorted by path so diagnostics are stable
/// across filesystems and directory-entry orderings.
std::vector<SourceFile> ListSources(const std::string& root) {
  std::vector<SourceFile> out;
  fs::path src = fs::path(root) / "src";
  if (!fs::exists(src)) return out;
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    fs::path p = entry.path();
    if (p.extension() == ".h" || p.extension() == ".cc") paths.push_back(p);
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) {
    SourceFile f;
    f.rel_path = fs::relative(p, fs::path(root)).generic_string();
    f.text = ReadFileText(p);
    f.lines = SplitLines(f.text);
    out.push_back(std::move(f));
  }
  return out;
}

/// First path component after src/ ("src/core/engine.h" -> "core").
std::string LayerOf(const std::string& rel_path) {
  const std::string prefix = "src/";
  if (rel_path.rfind(prefix, 0) != 0) return "";
  size_t start = prefix.size();
  size_t slash = rel_path.find('/', start);
  if (slash == std::string::npos) return "";
  return rel_path.substr(start, slash - start);
}

/// Filename without directory or extension ("src/core/rewriter.cc" ->
/// "rewriter").
std::string StemOf(const std::string& rel_path) {
  return fs::path(rel_path).stem().string();
}

/// 1-based line number of a character offset.
size_t LineOfOffset(const std::string& text, size_t offset) {
  size_t line = 1;
  for (size_t i = 0; i < offset && i < text.size(); ++i) {
    if (text[i] == '\n') ++line;
  }
  return line;
}

/// Replaces // and /* */ comment bodies with spaces (newlines preserved),
/// so token scans skip prose while offsets and line numbers stay valid.
std::string StripComments(const std::string& text) {
  std::string out = text;
  size_t i = 0;
  while (i + 1 < out.size()) {
    if (out[i] == '/' && out[i + 1] == '/') {
      while (i < out.size() && out[i] != '\n') out[i++] = ' ';
    } else if (out[i] == '/' && out[i + 1] == '*') {
      out[i] = out[i + 1] = ' ';
      i += 2;
      while (i + 1 < out.size() && !(out[i] == '*' && out[i + 1] == '/')) {
        if (out[i] != '\n') out[i] = ' ';
        ++i;
      }
      if (i + 1 < out.size()) {
        out[i] = out[i + 1] = ' ';
        i += 2;
      }
    } else {
      ++i;
    }
  }
  return out;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Offset one past the matching closer for the opener at `open`, or npos.
size_t MatchBracket(const std::string& text, size_t open, char open_ch,
                    char close_ch) {
  int depth = 0;
  for (size_t i = open; i < text.size(); ++i) {
    if (text[i] == open_ch) ++depth;
    if (text[i] == close_ch && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

// --- Rule 1: layering ---------------------------------------------------------

const std::regex kIncludeRe(R"(^\s*#\s*include\s*\"([^\"]+)\")");

void CheckFileLayering(const SourceFile& f, std::vector<Diagnostic>* out) {
  std::string layer = LayerOf(f.rel_path);
  if (layer.empty()) return;
  auto allowed = AllowedDeps().find(layer);
  if (allowed == AllowedDeps().end()) {
    out->push_back({f.rel_path, 0, "layering",
                    "unknown layer 'src/" + layer +
                        "'; add it to the DAG in tools/check/checker.cc"});
    return;
  }
  bool role_module =
      layer == "core" && RoleModuleStems().count(StemOf(f.rel_path)) > 0;
  for (size_t i = 0; i < f.lines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(f.lines[i], m, kIncludeRe)) continue;
    std::string target = m[1].str();
    if (role_module && target == "core/engine.h") {
      out->push_back(
          {f.rel_path, i + 1, "layering",
           "role module includes core/engine.h; role handlers reach "
           "shared state only through the ProtocolContext seam "
           "(core/context.h)"});
      continue;
    }
    size_t slash = target.find('/');
    if (slash == std::string::npos) continue;
    std::string target_layer = target.substr(0, slash);
    if (AllowedDeps().count(target_layer) == 0) continue;  // Not a layer.
    if (target_layer == layer) continue;
    if (allowed->second.count(target_layer) == 0) {
      out->push_back({f.rel_path, i + 1, "layering",
                      "layer 'src/" + layer + "' must not include '" +
                          target + "' (allowed: own layer + lower layers "
                          "of the DAG)"});
    }
  }
}

// --- Rule 2: message / dispatch exhaustiveness --------------------------------

std::vector<std::string> ParseEnumerators(const std::string& stripped,
                                          size_t enum_pos) {
  std::vector<std::string> enums;
  size_t open = stripped.find('{', enum_pos);
  if (open == std::string::npos) return enums;
  size_t close = MatchBracket(stripped, open, '{', '}');
  if (close == std::string::npos) return enums;
  std::string body = stripped.substr(open + 1, close - open - 2);
  std::regex ident(R"((k\w+))");
  for (auto it = std::sregex_iterator(body.begin(), body.end(), ident);
       it != std::sregex_iterator(); ++it) {
    enums.push_back((*it)[1].str());
  }
  return enums;
}

/// Collects `CqMsgType::kX` tokens appearing inside the argument list of
/// each `CqPayload(...)` constructor call, with the line of each token.
std::vector<std::pair<std::string, size_t>> ParseConstructorTags(
    const std::string& stripped) {
  std::vector<std::pair<std::string, size_t>> tags;
  const std::string needle = "CqPayload(";
  std::regex token(R"(CqMsgType::(k\w+))");
  size_t pos = 0;
  while ((pos = stripped.find(needle, pos)) != std::string::npos) {
    size_t open = pos + needle.size() - 1;
    size_t end = MatchBracket(stripped, open, '(', ')');
    if (end == std::string::npos) break;
    std::string args = stripped.substr(open, end - open);
    for (auto it = std::sregex_iterator(args.begin(), args.end(), token);
         it != std::sregex_iterator(); ++it) {
      tags.emplace_back((*it)[1].str(),
                        LineOfOffset(stripped, open + it->position(0)));
    }
    pos = end;
  }
  return tags;
}

}  // namespace

void CheckLayering(const CheckConfig& config, std::vector<Diagnostic>* out) {
  for (const SourceFile& f : ListSources(config.root)) {
    CheckFileLayering(f, out);
  }
}

void CheckMessages(const CheckConfig& config, std::vector<Diagnostic>* out) {
  fs::path messages = fs::path(config.root) / "src" / "core" / "messages.h";
  fs::path dispatch = fs::path(config.root) / "src" / "core" / "dispatch.cc";
  if (!fs::exists(messages) || !fs::exists(dispatch)) return;
  const std::string messages_rel = "src/core/messages.h";
  const std::string dispatch_rel = "src/core/dispatch.cc";
  std::string mtext = StripComments(ReadFileText(messages));
  std::string dtext = StripComments(ReadFileText(dispatch));

  size_t enum_pos = mtext.find("enum class CqMsgType");
  if (enum_pos == std::string::npos) {
    out->push_back({messages_rel, 0, "messages",
                    "enum class CqMsgType not found"});
    return;
  }
  std::vector<std::string> enums = ParseEnumerators(mtext, enum_pos);
  if (enums.empty()) {
    out->push_back({messages_rel, LineOfOffset(mtext, enum_pos), "messages",
                    "CqMsgType has no enumerators"});
    return;
  }
  std::set<std::string> enum_set(enums.begin(), enums.end());

  // kCqMsgTypeCount must be derived from the last enumerator.
  std::regex count_re(
      R"(kCqMsgTypeCount\s*=\s*static_cast<\s*size_t\s*>\(\s*CqMsgType::(k\w+)\s*\)\s*\+\s*1)");
  std::smatch cm;
  if (!std::regex_search(mtext, cm, count_re)) {
    out->push_back({messages_rel, 0, "messages",
                    "kCqMsgTypeCount must be defined as "
                    "static_cast<size_t>(CqMsgType::<last>) + 1"});
  } else if (cm[1].str() != enums.back()) {
    out->push_back({messages_rel,
                    LineOfOffset(mtext, static_cast<size_t>(cm.position(0))),
                    "messages",
                    "kCqMsgTypeCount is derived from CqMsgType::" +
                        cm[1].str() + " but the last enumerator is " +
                        enums.back()});
  }

  // Every enumerator tagged by exactly one CqPayload(...) constructor.
  std::map<std::string, std::vector<size_t>> tag_lines;
  for (const auto& [name, line] : ParseConstructorTags(mtext)) {
    tag_lines[name].push_back(line);
    if (enum_set.count(name) == 0) {
      out->push_back({messages_rel, line, "messages",
                      "payload constructor tags unknown enumerator "
                      "CqMsgType::" + name});
    }
  }
  for (const std::string& e : enums) {
    auto it = tag_lines.find(e);
    if (it == tag_lines.end()) {
      out->push_back({messages_rel, 0, "messages",
                      "CqMsgType::" + e +
                          " has no payload struct (no CqPayload(CqMsgType::" +
                          e + ") constructor tag)"});
    } else if (it->second.size() > 1) {
      out->push_back({messages_rel, it->second[1], "messages",
                      "CqMsgType::" + e + " is tagged by " +
                          std::to_string(it->second.size()) +
                          " payload constructors; exactly one expected"});
    }
  }

  // Every enumerator registered exactly once in the dispatch table.
  std::regex reg_re(R"(Register\s*\(\s*CqMsgType::(k\w+))");
  std::map<std::string, std::vector<size_t>> reg_lines;
  for (auto it = std::sregex_iterator(dtext.begin(), dtext.end(), reg_re);
       it != std::sregex_iterator(); ++it) {
    std::string name = (*it)[1].str();
    size_t line = LineOfOffset(dtext, static_cast<size_t>(it->position(0)));
    reg_lines[name].push_back(line);
    if (enum_set.count(name) == 0) {
      out->push_back({dispatch_rel, line, "messages",
                      "handler registered for unknown enumerator "
                      "CqMsgType::" + name});
    }
  }
  for (const std::string& e : enums) {
    auto it = reg_lines.find(e);
    if (it == reg_lines.end()) {
      out->push_back({dispatch_rel, 0, "messages",
                      "CqMsgType::" + e +
                          " has no handler in the default dispatch table"});
    } else if (it->second.size() > 1) {
      out->push_back({dispatch_rel, it->second[1], "messages",
                      "CqMsgType::" + e + " registered " +
                          std::to_string(it->second.size()) +
                          " times in the default dispatch table"});
    }
  }
}

// --- Rule 3: wire-codec exhaustiveness ----------------------------------------

void CheckCodecs(const CheckConfig& config, std::vector<Diagnostic>* out) {
  fs::path messages = fs::path(config.root) / "src" / "core" / "messages.h";
  fs::path codec = fs::path(config.root) / "src" / "core" / "codec.cc";
  if (!fs::exists(messages) || !fs::exists(codec)) return;
  const std::string messages_rel = "src/core/messages.h";
  const std::string codec_rel = "src/core/codec.cc";
  std::string mtext = StripComments(ReadFileText(messages));
  std::string ctext = StripComments(ReadFileText(codec));

  size_t enum_pos = mtext.find("enum class CqMsgType");
  if (enum_pos == std::string::npos) {
    out->push_back({messages_rel, 0, "codecs",
                    "enum class CqMsgType not found"});
    return;
  }
  std::vector<std::string> enums = ParseEnumerators(mtext, enum_pos);
  if (enums.empty()) {
    out->push_back({messages_rel, LineOfOffset(mtext, enum_pos), "codecs",
                    "CqMsgType has no enumerators"});
    return;
  }
  std::set<std::string> enum_set(enums.begin(), enums.end());

  // Every enumerator gets exactly one Encode/Decode pair in the default
  // codec table; a payload type without one is silently undeliverable over
  // the socket transport.
  std::regex reg_re(R"(RegisterCodec\s*\(\s*CqMsgType::(k\w+))");
  std::map<std::string, std::vector<size_t>> reg_lines;
  for (auto it = std::sregex_iterator(ctext.begin(), ctext.end(), reg_re);
       it != std::sregex_iterator(); ++it) {
    std::string name = (*it)[1].str();
    size_t line = LineOfOffset(ctext, static_cast<size_t>(it->position(0)));
    reg_lines[name].push_back(line);
    if (enum_set.count(name) == 0) {
      out->push_back({codec_rel, line, "codecs",
                      "codec registered for unknown enumerator "
                      "CqMsgType::" + name});
    }
  }
  for (const std::string& e : enums) {
    auto it = reg_lines.find(e);
    if (it == reg_lines.end()) {
      out->push_back({codec_rel, 0, "codecs",
                      "CqMsgType::" + e +
                          " has no registered wire codec (no "
                          "RegisterCodec(CqMsgType::" + e +
                          ", ...) in the default codec table)"});
    } else if (it->second.size() > 1) {
      out->push_back({codec_rel, it->second[1], "codecs",
                      "CqMsgType::" + e + " registered " +
                          std::to_string(it->second.size()) +
                          " times in the default codec table"});
    }
  }
}

namespace {

// --- Rule 4: determinism ------------------------------------------------------

struct BannedToken {
  const char* token;
  const char* why;
};

constexpr BannedToken kBanned[] = {
    {"rand(", "use common/rng.h (seeded, reproducible) instead"},
    {"srand(", "use common/rng.h (seeded, reproducible) instead"},
    {"system_clock::now",
     "wall clocks break reproducible runs; use the simulator's virtual "
     "clock (ProtocolContext::Now)"},
    {"time(",
     "wall clocks break reproducible runs; use the simulator's virtual "
     "clock (ProtocolContext::Now)"},
};

/// True when the two lines above `line_index` or the line itself carry an
/// ordered-ok waiver.
bool HasOrderedOkWaiver(const std::vector<std::string>& lines,
                        size_t line_index) {
  const std::string needle = "contjoin-check: ordered-ok(";
  size_t first = line_index >= 2 ? line_index - 2 : 0;
  for (size_t i = first; i <= line_index && i < lines.size(); ++i) {
    if (lines[i].find(needle) != std::string::npos) return true;
  }
  return false;
}

/// Names declared anywhere in src/ with an unordered container type
/// (directly, or via an alias of one). Collected tree-wide so a member
/// declared in a header is recognized when iterated in a .cc file.
std::set<std::string> CollectUnorderedNames(
    const std::vector<SourceFile>& files) {
  std::set<std::string> aliases;
  // Pass A: using-aliases of unordered containers.
  std::regex alias_re(
      R"(using\s+(\w+)\s*=\s*(?:std::\s*)?unordered_(?:map|set)\s*<)");
  std::vector<std::string> stripped_texts;
  stripped_texts.reserve(files.size());
  for (const SourceFile& f : files) {
    stripped_texts.push_back(StripComments(f.text));
    const std::string& text = stripped_texts.back();
    for (auto it = std::sregex_iterator(text.begin(), text.end(), alias_re);
         it != std::sregex_iterator(); ++it) {
      aliases.insert((*it)[1].str());
    }
  }

  // After a type, accept `*`/`&` then an identifier that is a variable
  // (terminated by ; = { , or a closing paren — not an opening paren,
  // which would make it a function name).
  auto capture_var = [](const std::string& text, size_t pos,
                        std::set<std::string>* names) {
    while (pos < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '*' || text[pos] == '&')) {
      ++pos;
    }
    size_t start = pos;
    while (pos < text.size() && IsIdentChar(text[pos])) ++pos;
    if (pos == start) return;
    std::string name = text.substr(start, pos - start);
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
    if (pos < text.size() && (text[pos] == ';' || text[pos] == '=' ||
                              text[pos] == '{' || text[pos] == ',' ||
                              text[pos] == ')')) {
      names->insert(name);
    }
  };

  std::set<std::string> names;
  for (const std::string& text : stripped_texts) {
    // Pass B1: direct unordered_map<...> / unordered_set<...> declarations.
    std::regex direct_re(R"(unordered_(?:map|set)\s*<)");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), direct_re);
         it != std::sregex_iterator(); ++it) {
      size_t open = static_cast<size_t>(it->position(0)) + it->length(0) - 1;
      size_t end = MatchBracket(text, open, '<', '>');
      if (end == std::string::npos) continue;
      capture_var(text, end, &names);
    }
    // Pass B2: declarations via a collected alias (possibly qualified).
    for (const std::string& alias : aliases) {
      size_t pos = 0;
      while ((pos = text.find(alias, pos)) != std::string::npos) {
        size_t end = pos + alias.size();
        bool word_start = pos == 0 || !IsIdentChar(text[pos - 1]);
        bool word_end = end >= text.size() || !IsIdentChar(text[end]);
        if (word_start && word_end) capture_var(text, end, &names);
        pos = end;
      }
    }
  }
  return names;
}

/// Final identifier of a range-for container expression: "*groups" ->
/// "groups", "state.mw.alqt" -> "alqt", "items_" -> "items_".
std::string TrailingIdentifier(const std::string& expr) {
  size_t end = expr.size();
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(expr[end - 1])) != 0) {
    --end;
  }
  if (end > 0 && (expr[end - 1] == ')' || expr[end - 1] == ']')) return "";
  size_t start = end;
  while (start > 0 && IsIdentChar(expr[start - 1])) --start;
  return expr.substr(start, end - start);
}

void CheckFileDeterminism(const SourceFile& f,
                          const std::set<std::string>& unordered_names,
                          std::vector<Diagnostic>* out) {
  std::string stripped = StripComments(f.text);
  std::vector<std::string> stripped_lines = SplitLines(stripped);

  // Banned nondeterminism sources.
  for (size_t i = 0; i < stripped_lines.size(); ++i) {
    const std::string& line = stripped_lines[i];
    for (const BannedToken& banned : kBanned) {
      size_t pos = 0;
      std::string token = banned.token;
      while ((pos = line.find(token, pos)) != std::string::npos) {
        // Skip identifier tails (pub_time() is not time()) and member
        // calls (sim.time() reads the virtual clock, which is fine).
        bool word_start = pos == 0 || (!IsIdentChar(line[pos - 1]) &&
                                       line[pos - 1] != '.');
        if (word_start) {
          out->push_back({f.rel_path, i + 1, "determinism",
                          "banned call '" + token + "': " + banned.why});
        }
        pos += token.size();
      }
    }
  }

  // Range-for over unordered containers needs an ordered-ok waiver.
  size_t pos = 0;
  while ((pos = stripped.find("for", pos)) != std::string::npos) {
    bool word = (pos == 0 || !IsIdentChar(stripped[pos - 1])) &&
                (pos + 3 >= stripped.size() || !IsIdentChar(stripped[pos + 3]));
    size_t after = pos + 3;
    pos = after;
    if (!word) continue;
    while (after < stripped.size() &&
           std::isspace(static_cast<unsigned char>(stripped[after])) != 0) {
      ++after;
    }
    if (after >= stripped.size() || stripped[after] != '(') continue;
    size_t close = MatchBracket(stripped, after, '(', ')');
    if (close == std::string::npos) continue;
    std::string head = stripped.substr(after + 1, close - after - 2);
    // The range-for separator: a ':' that is not part of '::'.
    size_t colon = std::string::npos;
    for (size_t i = 0; i + 1 <= head.size(); ++i) {
      if (head[i] != ':') continue;
      if ((i + 1 < head.size() && head[i + 1] == ':') ||
          (i > 0 && head[i - 1] == ':')) {
        continue;
      }
      colon = i;
      break;
    }
    if (colon == std::string::npos) continue;
    std::string container = head.substr(colon + 1);
    std::string name = TrailingIdentifier(container);
    if (name.empty() || unordered_names.count(name) == 0) continue;
    size_t line_index = LineOfOffset(stripped, after) - 1;
    if (HasOrderedOkWaiver(f.lines, line_index)) continue;
    out->push_back(
        {f.rel_path, line_index + 1, "determinism",
         "iteration over unordered container '" + name +
             "' — hash-table order must not reach emission (sort the "
             "keys, use an ordered container, or waive with "
             "// contjoin-check: ordered-ok(<reason>))"});
  }
}

}  // namespace

void CheckDeterminism(const CheckConfig& config,
                      std::vector<Diagnostic>* out) {
  std::vector<SourceFile> files = ListSources(config.root);
  std::set<std::string> unordered_names = CollectUnorderedNames(files);
  for (const SourceFile& f : files) {
    CheckFileDeterminism(f, unordered_names, out);
  }
}

// --- Rule 5: lint promotion ---------------------------------------------------

void CheckLintConfig(const CheckConfig& config,
                     std::vector<Diagnostic>* out) {
  const char* kPromoted[] = {"bugprone-use-after-move",
                             "bugprone-dangling-handle", "performance-*"};
  fs::path tidy = fs::path(config.root) / ".clang-tidy";
  if (!fs::exists(tidy)) {
    out->push_back({".clang-tidy", 0, "lint-config",
                    ".clang-tidy missing; the lint gate has no profile"});
    return;
  }
  std::string text = ReadFileText(tidy);
  std::vector<std::string> lines = SplitLines(text);

  // Collect the (possibly folded multi-line) values of the two keys.
  auto value_of = [&lines](const std::string& key) {
    std::string value;
    for (size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].rfind(key + ":", 0) != 0) continue;
      value = lines[i].substr(key.size() + 1);
      if (value.find('>') != std::string::npos ||
          value.find('|') != std::string::npos) {
        for (size_t j = i + 1;
             j < lines.size() && (lines[j].empty() || lines[j][0] == ' ');
             ++j) {
          value += " " + lines[j];
        }
      }
      break;
    }
    return value;
  };
  std::string checks = value_of("Checks");
  std::string errors = value_of("WarningsAsErrors");

  for (const char* check : kPromoted) {
    std::string family = std::string(check).substr(0, std::string(check).find('-'));
    bool enabled = checks.find(check) != std::string::npos ||
                   checks.find(family + "-*") != std::string::npos;
    if (!enabled) {
      out->push_back({".clang-tidy", 0, "lint-config",
                      std::string("promoted check '") + check +
                          "' is not enabled in Checks"});
    }
    if (errors.find(check) == std::string::npos) {
      out->push_back({".clang-tidy", 0, "lint-config",
                      std::string("promoted check '") + check +
                          "' must be listed in WarningsAsErrors "
                          "(warnings-as-errors lint gate)"});
    }
  }
}

// --- Rule 6: shard safety -----------------------------------------------------

namespace {

/// True when the two lines above `line_index` or the line itself carry a
/// shard-ok waiver.
bool HasShardOkWaiver(const std::vector<std::string>& lines,
                      size_t line_index) {
  const std::string needle = "contjoin-check: shard-ok(";
  size_t first = line_index >= 2 ? line_index - 2 : 0;
  for (size_t i = first; i <= line_index && i < lines.size(); ++i) {
    if (lines[i].find(needle) != std::string::npos) return true;
  }
  return false;
}

void CheckFileShardSafety(const SourceFile& f, std::vector<Diagnostic>* out) {
  std::string stripped = StripComments(f.text);

  // (a) Mutable static data. A `static` declarator is data when the first
  // structural token after the declaration's type+name is '=', ';' or '{'
  // — an opening paren first means a function. Template argument lists are
  // skipped so `static std::function<void()> f;` still reads as data.
  size_t pos = 0;
  while ((pos = stripped.find("static", pos)) != std::string::npos) {
    size_t start = pos;
    bool word = (pos == 0 || !IsIdentChar(stripped[pos - 1])) &&
                (pos + 6 >= stripped.size() ||
                 !IsIdentChar(stripped[pos + 6]));
    pos += 6;
    if (!word) continue;
    size_t j = pos;
    while (j < stripped.size() &&
           std::isspace(static_cast<unsigned char>(stripped[j])) != 0) {
      ++j;
    }
    // Immutable statics are shard-safe by construction.
    if (stripped.compare(j, 9, "constexpr") == 0 ||
        (stripped.compare(j, 5, "const") == 0 &&
         (j + 5 >= stripped.size() || !IsIdentChar(stripped[j + 5])))) {
      continue;
    }
    bool is_data = false;
    while (j < stripped.size()) {
      char c = stripped[j];
      if (c == '<') {
        size_t end = MatchBracket(stripped, j, '<', '>');
        if (end == std::string::npos) break;
        j = end;
        continue;
      }
      if (c == '(') break;  // Function declaration or definition.
      if (c == '=' || c == ';' || c == '{') {
        is_data = true;
        break;
      }
      ++j;
    }
    if (!is_data) continue;
    size_t line_index = LineOfOffset(stripped, start) - 1;
    if (HasShardOkWaiver(f.lines, line_index)) continue;
    out->push_back(
        {f.rel_path, line_index + 1, "shard-safety",
         "mutable static data in a role module — handlers for different "
         "node shards run concurrently under the parallel simulator core; "
         "keep state in NodeState (or waive with "
         "// contjoin-check: shard-ok(<reason>))"});
  }

  // (b) Shared engine RNG draws. The draw order of a process-wide RNG
  // depends on thread interleaving, so a role handler consuming it breaks
  // the bit-identical-at-any-worker-count contract.
  pos = 0;
  const std::string rng = "GetRng(";
  while ((pos = stripped.find(rng, pos)) != std::string::npos) {
    size_t start = pos;
    pos += rng.size();
    size_t line_index = LineOfOffset(stripped, start) - 1;
    if (HasShardOkWaiver(f.lines, line_index)) continue;
    out->push_back(
        {f.rel_path, line_index + 1, "shard-safety",
         "GetRng() draw in a role module — shared-RNG draw order depends "
         "on thread interleaving; derive randomness from per-node state "
         "(or waive with // contjoin-check: shard-ok(<reason>))"});
  }
}

}  // namespace

void CheckShardSafety(const CheckConfig& config,
                      std::vector<Diagnostic>* out) {
  for (const SourceFile& f : ListSources(config.root)) {
    if (LayerOf(f.rel_path) != "core") continue;
    if (RoleModuleStems().count(StemOf(f.rel_path)) == 0) continue;
    CheckFileShardSafety(f, out);
  }
}

// --- Compile-database coverage ------------------------------------------------

void CheckCompileDb(const CheckConfig& config, std::vector<Diagnostic>* out) {
  if (config.compile_db.empty()) return;
  if (!fs::exists(config.compile_db)) {
    out->push_back({config.compile_db, 0, "compile-db",
                    "compile database not found (configure with "
                    "CMAKE_EXPORT_COMPILE_COMMANDS=ON)"});
    return;
  }
  std::string db = ReadFileText(config.compile_db);
  std::set<std::string> built;
  std::regex file_re(R"re("file"\s*:\s*"([^"]+)")re");
  for (auto it = std::sregex_iterator(db.begin(), db.end(), file_re);
       it != std::sregex_iterator(); ++it) {
    built.insert(fs::path((*it)[1].str()).lexically_normal().generic_string());
  }
  for (const SourceFile& f : ListSources(config.root)) {
    if (fs::path(f.rel_path).extension() != ".cc") continue;
    fs::path abs = fs::absolute(fs::path(config.root) / f.rel_path)
                       .lexically_normal();
    bool found = built.count(abs.generic_string()) > 0;
    if (!found) {
      // Fall back to a suffix match (relative entries in the database).
      for (const std::string& b : built) {
        if (b.size() >= f.rel_path.size() &&
            b.compare(b.size() - f.rel_path.size(), f.rel_path.size(),
                      f.rel_path) == 0) {
          found = true;
          break;
        }
      }
    }
    if (!found) {
      out->push_back({f.rel_path, 0, "compile-db",
                      "translation unit missing from the compile database — "
                      "it is not built by any target (dead code or a "
                      "CMakeLists.txt omission)"});
    }
  }
}

// --- Driver -------------------------------------------------------------------

std::vector<Diagnostic> RunChecks(const CheckConfig& config) {
  std::vector<Diagnostic> out;
  if (config.check_layering) CheckLayering(config, &out);
  if (config.check_messages) CheckMessages(config, &out);
  if (config.check_codecs) CheckCodecs(config, &out);
  if (config.check_determinism) CheckDeterminism(config, &out);
  if (config.check_lint_config) CheckLintConfig(config, &out);
  if (config.check_shard_safety) CheckShardSafety(config, &out);
  CheckCompileDb(config, &out);
  std::sort(out.begin(), out.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return out;
}

std::string FormatDiagnostic(const Diagnostic& d) {
  std::string out = d.file;
  if (d.line > 0) out += ":" + std::to_string(d.line);
  out += ": [" + d.rule + "] " + d.message;
  return out;
}

}  // namespace contjoin::check
