#include "checker.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

namespace contjoin::check {

namespace fs = std::filesystem;

namespace {

bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

size_t SkipSpaces(const std::string& text, size_t pos) {
  while (pos < text.size() && IsSpace(text[pos])) ++pos;
  return pos;
}

// --- Layer DAG ----------------------------------------------------------------
//
// Allowed include targets per src/ layer. A layer may always include
// itself; anything else must be listed here. Adding a directory under
// src/ requires teaching this table its place in the DAG — that is the
// point: the architecture changes only by explicit decision.

const std::map<std::string, std::set<std::string>>& AllowedDeps() {
  static const std::map<std::string, std::set<std::string>> kDeps = {
      {"common", {}},
      {"relational", {"common"}},
      {"query", {"common", "relational"}},
      {"sim", {"common"}},
      {"faults", {"common", "sim"}},
      {"chord", {"common", "sim", "faults"}},
      {"adapt", {"common"}},
      {"core",
       {"common", "relational", "query", "sim", "faults", "chord", "adapt"}},
      {"workload",
       {"common", "relational", "query", "sim", "faults", "chord", "core"}},
      {"reference",
       {"common", "relational", "query", "sim", "faults", "chord", "core"}},
      {"serving",
       {"common", "relational", "query", "sim", "faults", "chord", "core",
        "workload"}},
  };
  return kDeps;
}

/// Protocol role modules: these reach shared engine state only through the
/// ProtocolContext seam, so the engine facade header is off-limits, and
/// their handlers run concurrently across node shards (rule 6).
const std::set<std::string>& RoleModuleStems() {
  static const std::set<std::string> kStems = {
      "rewriter",     "evaluator",   "subscriber", "mw_protocol",
      "otj_protocol", "reliability", "adapt_protocol"};
  return kStems;
}

/// File stem -> protocol role for the send side of the flow graph. The
/// submission entry path sends messages too (it runs serially on the
/// driver, so it is a send role without being a shard-checked role
/// module).
std::string SendRoleOf(const std::string& stem) {
  if (stem == "rewriter" || stem == "evaluator" || stem == "subscriber" ||
      stem == "reliability" || stem == "submission") {
    return stem;
  }
  if (stem == "mw_protocol") return "mw";
  if (stem == "otj_protocol") return "otj";
  if (stem == "adapt_protocol") return "adapt";
  return "";
}

/// Call names that hand a message to the network.
const std::set<std::string>& SendCallNames() {
  static const std::set<std::string> kNames = {
      "Send",     "Multisend", "TransmitMessage", "Broadcast",
      "Redeliver", "SendReliable", "Transmit", "TransmitHop"};
  return kNames;
}

/// Call names that arm the reliability wrapper.
const std::set<std::string>& WrapCallNames() {
  static const std::set<std::string> kNames = {"Arm", "ArmAll",
                                               "SendReliable"};
  return kNames;
}

bool HasWrapCall(const FunctionDef& fn) {
  for (const CallSite& call : fn.calls) {
    if (WrapCallNames().count(call.name) > 0) return true;
  }
  return false;
}

bool HasSendCall(const FunctionDef& fn) {
  for (const CallSite& call : fn.calls) {
    if (SendCallNames().count(call.name) > 0) return true;
  }
  return false;
}

// --- Rule 1: layering ---------------------------------------------------------

/// Include target of lines like `#include "x/y.h"`; empty otherwise.
std::string IncludeTargetOf(const std::string& line) {
  size_t i = SkipSpaces(line, 0);
  if (i >= line.size() || line[i] != '#') return "";
  i = SkipSpaces(line, i + 1);
  if (line.compare(i, 7, "include") != 0) return "";
  i = SkipSpaces(line, i + 7);
  if (i >= line.size() || line[i] != '"') return "";
  size_t end = line.find('"', i + 1);
  if (end == std::string::npos) return "";
  return line.substr(i + 1, end - i - 1);
}

void CheckFileLayering(const SourceFile& f, std::vector<Diagnostic>* out) {
  std::string layer = LayerOf(f.rel_path);
  if (layer.empty()) return;
  auto allowed = AllowedDeps().find(layer);
  if (allowed == AllowedDeps().end()) {
    out->push_back({f.rel_path, 0, "layering",
                    "unknown layer 'src/" + layer +
                        "'; add it to the DAG in tools/check/checker.cc"});
    return;
  }
  bool role_module =
      layer == "core" && RoleModuleStems().count(StemOf(f.rel_path)) > 0;
  for (size_t i = 0; i < f.lines.size(); ++i) {
    std::string target = IncludeTargetOf(f.lines[i]);
    if (target.empty()) continue;
    if (role_module && target == "core/engine.h") {
      out->push_back(
          {f.rel_path, i + 1, "layering",
           "role module includes core/engine.h; role handlers reach "
           "shared state only through the ProtocolContext seam "
           "(core/context.h)"});
      continue;
    }
    size_t slash = target.find('/');
    if (slash == std::string::npos) continue;
    std::string target_layer = target.substr(0, slash);
    if (AllowedDeps().count(target_layer) == 0) continue;  // Not a layer.
    if (target_layer == layer) continue;
    if (allowed->second.count(target_layer) == 0) {
      out->push_back({f.rel_path, i + 1, "layering",
                      "layer 'src/" + layer + "' must not include '" +
                          target + "' (allowed: own layer + lower layers "
                          "of the DAG)"});
    }
  }
}

void CheckLayeringWithIndex(const SymbolIndex& index,
                            std::vector<Diagnostic>* out) {
  for (const SourceFile& f : index.files) CheckFileLayering(f, out);
}

// --- Rule 2/3 shared parsing --------------------------------------------------

std::vector<std::string> ParseEnumerators(const std::string& stripped,
                                          size_t enum_pos) {
  std::vector<std::string> enums;
  size_t open = stripped.find('{', enum_pos);
  if (open == std::string::npos) return enums;
  size_t close = MatchBracket(stripped, open, '{', '}');
  if (close == std::string::npos) return enums;
  size_t i = open + 1;
  while (i < close) {
    if (stripped[i] == 'k' && !IsIdentChar(stripped[i - 1])) {
      size_t j = i;
      while (j < close && IsIdentChar(stripped[j])) ++j;
      if (j > i + 1) enums.push_back(stripped.substr(i, j - i));
      i = j;
    } else {
      ++i;
    }
  }
  return enums;
}

/// Collects `CqMsgType::kX` tokens appearing inside the argument list of
/// each `CqPayload(...)` constructor call, with the line of each token.
std::vector<std::pair<std::string, size_t>> ParseConstructorTags(
    const std::string& stripped) {
  std::vector<std::pair<std::string, size_t>> tags;
  size_t pos = 0;
  while ((pos = FindWordToken(stripped, pos, "CqPayload")) !=
         std::string::npos) {
    size_t open = SkipSpaces(stripped, pos + 9);
    pos += 9;
    if (open >= stripped.size() || stripped[open] != '(') continue;
    size_t end = MatchBracket(stripped, open, '(', ')');
    if (end == std::string::npos) break;
    size_t i = open;
    while ((i = stripped.find("CqMsgType::", i)) != std::string::npos &&
           i < end) {
      size_t start = i + 11;
      size_t j = start;
      while (j < stripped.size() && IsIdentChar(stripped[j])) ++j;
      if (j > start) {
        tags.emplace_back(stripped.substr(start, j - start),
                          LineOfOffset(stripped, i));
      }
      i = j;
    }
    pos = end;
  }
  return tags;
}

struct TypedCall {
  std::string enumerator;
  size_t line = 0;
  std::string args_tail;  // Text after the enumerator, inside the parens.
};

/// Occurrences of `fn_name(CqMsgType::kX, <tail>)`.
std::vector<TypedCall> FindTypedCalls(const std::string& code,
                                      const std::string& fn_name) {
  std::vector<TypedCall> out;
  size_t pos = 0;
  while ((pos = FindWordToken(code, pos, fn_name)) != std::string::npos) {
    size_t start = pos;
    size_t open = SkipSpaces(code, pos + fn_name.size());
    pos += fn_name.size();
    if (open >= code.size() || code[open] != '(') continue;
    size_t close = MatchBracket(code, open, '(', ')');
    if (close == std::string::npos) continue;
    size_t i = SkipSpaces(code, open + 1);
    if (code.compare(i, 11, "CqMsgType::") != 0) continue;
    size_t name_start = i + 11;
    size_t j = name_start;
    while (j < code.size() && IsIdentChar(code[j])) ++j;
    if (j == name_start) continue;
    TypedCall call;
    call.enumerator = code.substr(name_start, j - name_start);
    call.line = LineOfOffset(code, start);
    call.args_tail = code.substr(j, close - 1 - j);
    out.push_back(std::move(call));
    pos = close;
  }
  return out;
}

/// Verifies `kCqMsgTypeCount = static_cast<size_t>(CqMsgType::<X>) + 1`
/// and returns X; empty when the definition is absent or malformed
/// (`offset` then points at the token when it was at least found).
std::string ParseCountDerivation(const std::string& stripped,
                                 size_t* offset) {
  *offset = std::string::npos;
  size_t pos = FindWordToken(stripped, 0, "kCqMsgTypeCount");
  if (pos == std::string::npos) return "";
  *offset = pos;
  size_t j = SkipSpaces(stripped, pos + 15);
  if (j >= stripped.size() || stripped[j] != '=') return "";
  j = SkipSpaces(stripped, j + 1);
  if (stripped.compare(j, 11, "static_cast") != 0) return "";
  j = SkipSpaces(stripped, j + 11);
  if (j >= stripped.size() || stripped[j] != '<') return "";
  j = SkipSpaces(stripped, j + 1);
  if (stripped.compare(j, 6, "size_t") != 0) return "";
  j = SkipSpaces(stripped, j + 6);
  if (j >= stripped.size() || stripped[j] != '>') return "";
  j = SkipSpaces(stripped, j + 1);
  if (j >= stripped.size() || stripped[j] != '(') return "";
  j = SkipSpaces(stripped, j + 1);
  if (stripped.compare(j, 11, "CqMsgType::") != 0) return "";
  j += 11;
  size_t name_start = j;
  while (j < stripped.size() && IsIdentChar(stripped[j])) ++j;
  std::string name = stripped.substr(name_start, j - name_start);
  j = SkipSpaces(stripped, j);
  if (j >= stripped.size() || stripped[j] != ')') return "";
  j = SkipSpaces(stripped, j + 1);
  if (j >= stripped.size() || stripped[j] != '+') return "";
  j = SkipSpaces(stripped, j + 1);
  if (j >= stripped.size() || stripped[j] != '1') return "";
  return name;
}

}  // namespace

void CheckMessages(const CheckConfig& config, std::vector<Diagnostic>* out) {
  fs::path messages = fs::path(config.root) / "src" / "core" / "messages.h";
  fs::path dispatch = fs::path(config.root) / "src" / "core" / "dispatch.cc";
  if (!fs::exists(messages) || !fs::exists(dispatch)) return;
  const std::string messages_rel = "src/core/messages.h";
  const std::string dispatch_rel = "src/core/dispatch.cc";
  std::string mtext = StripComments(ReadFileText(messages.string()));
  std::string dtext = StripComments(ReadFileText(dispatch.string()));

  size_t enum_pos = mtext.find("enum class CqMsgType");
  if (enum_pos == std::string::npos) {
    out->push_back({messages_rel, 0, "messages",
                    "enum class CqMsgType not found"});
    return;
  }
  std::vector<std::string> enums = ParseEnumerators(mtext, enum_pos);
  if (enums.empty()) {
    out->push_back({messages_rel, LineOfOffset(mtext, enum_pos), "messages",
                    "CqMsgType has no enumerators"});
    return;
  }
  std::set<std::string> enum_set(enums.begin(), enums.end());

  // kCqMsgTypeCount must be derived from the last enumerator.
  size_t count_offset = 0;
  std::string count_base = ParseCountDerivation(mtext, &count_offset);
  if (count_base.empty()) {
    out->push_back({messages_rel, 0, "messages",
                    "kCqMsgTypeCount must be defined as "
                    "static_cast<size_t>(CqMsgType::<last>) + 1"});
  } else if (count_base != enums.back()) {
    out->push_back({messages_rel, LineOfOffset(mtext, count_offset),
                    "messages",
                    "kCqMsgTypeCount is derived from CqMsgType::" +
                        count_base + " but the last enumerator is " +
                        enums.back()});
  }

  // Every enumerator tagged by exactly one CqPayload(...) constructor.
  std::map<std::string, std::vector<size_t>> tag_lines;
  for (const auto& [name, line] : ParseConstructorTags(mtext)) {
    tag_lines[name].push_back(line);
    if (enum_set.count(name) == 0) {
      out->push_back({messages_rel, line, "messages",
                      "payload constructor tags unknown enumerator "
                      "CqMsgType::" + name});
    }
  }
  for (const std::string& e : enums) {
    auto it = tag_lines.find(e);
    if (it == tag_lines.end()) {
      out->push_back({messages_rel, 0, "messages",
                      "CqMsgType::" + e +
                          " has no payload struct (no CqPayload(CqMsgType::" +
                          e + ") constructor tag)"});
    } else if (it->second.size() > 1) {
      out->push_back({messages_rel, it->second[1], "messages",
                      "CqMsgType::" + e + " is tagged by " +
                          std::to_string(it->second.size()) +
                          " payload constructors; exactly one expected"});
    }
  }

  // Every enumerator registered exactly once in the dispatch table.
  std::map<std::string, std::vector<size_t>> reg_lines;
  for (const TypedCall& reg : FindTypedCalls(dtext, "Register")) {
    reg_lines[reg.enumerator].push_back(reg.line);
    if (enum_set.count(reg.enumerator) == 0) {
      out->push_back({dispatch_rel, reg.line, "messages",
                      "handler registered for unknown enumerator "
                      "CqMsgType::" + reg.enumerator});
    }
  }
  for (const std::string& e : enums) {
    auto it = reg_lines.find(e);
    if (it == reg_lines.end()) {
      out->push_back({dispatch_rel, 0, "messages",
                      "CqMsgType::" + e +
                          " has no handler in the default dispatch table"});
    } else if (it->second.size() > 1) {
      out->push_back({dispatch_rel, it->second[1], "messages",
                      "CqMsgType::" + e + " registered " +
                          std::to_string(it->second.size()) +
                          " times in the default dispatch table"});
    }
  }
}

// --- Rule 3: wire-codec exhaustiveness ----------------------------------------

void CheckCodecs(const CheckConfig& config, std::vector<Diagnostic>* out) {
  fs::path messages = fs::path(config.root) / "src" / "core" / "messages.h";
  fs::path codec = fs::path(config.root) / "src" / "core" / "codec.cc";
  if (!fs::exists(messages) || !fs::exists(codec)) return;
  const std::string messages_rel = "src/core/messages.h";
  const std::string codec_rel = "src/core/codec.cc";
  std::string mtext = StripComments(ReadFileText(messages.string()));
  std::string ctext = StripComments(ReadFileText(codec.string()));

  size_t enum_pos = mtext.find("enum class CqMsgType");
  if (enum_pos == std::string::npos) {
    out->push_back({messages_rel, 0, "codecs",
                    "enum class CqMsgType not found"});
    return;
  }
  std::vector<std::string> enums = ParseEnumerators(mtext, enum_pos);
  if (enums.empty()) {
    out->push_back({messages_rel, LineOfOffset(mtext, enum_pos), "codecs",
                    "CqMsgType has no enumerators"});
    return;
  }
  std::set<std::string> enum_set(enums.begin(), enums.end());

  // Every enumerator gets exactly one Encode/Decode pair in the default
  // codec table; a payload type without one is silently undeliverable over
  // the socket transport.
  std::map<std::string, std::vector<size_t>> reg_lines;
  for (const TypedCall& reg : FindTypedCalls(ctext, "RegisterCodec")) {
    reg_lines[reg.enumerator].push_back(reg.line);
    if (enum_set.count(reg.enumerator) == 0) {
      out->push_back({codec_rel, reg.line, "codecs",
                      "codec registered for unknown enumerator "
                      "CqMsgType::" + reg.enumerator});
    }
  }
  for (const std::string& e : enums) {
    auto it = reg_lines.find(e);
    if (it == reg_lines.end()) {
      out->push_back({codec_rel, 0, "codecs",
                      "CqMsgType::" + e +
                          " has no registered wire codec (no "
                          "RegisterCodec(CqMsgType::" + e +
                          ", ...) in the default codec table)"});
    } else if (it->second.size() > 1) {
      out->push_back({codec_rel, it->second[1], "codecs",
                      "CqMsgType::" + e + " registered " +
                          std::to_string(it->second.size()) +
                          " times in the default codec table"});
    }
  }
}

namespace {

// --- Rule 4: determinism ------------------------------------------------------

struct BannedToken {
  const char* token;
  const char* why;
};

constexpr BannedToken kBanned[] = {
    {"rand(", "use common/rng.h (seeded, reproducible) instead"},
    {"srand(", "use common/rng.h (seeded, reproducible) instead"},
    {"system_clock::now",
     "wall clocks break reproducible runs; use the simulator's virtual "
     "clock (ProtocolContext::Now)"},
    {"time(",
     "wall clocks break reproducible runs; use the simulator's virtual "
     "clock (ProtocolContext::Now)"},
};

/// A range-for over some container expression, with its body span.
struct RangeForLoop {
  size_t head = 0;        // Offset of the 'for' keyword.
  std::string container;  // Text after the ':' separator.
  size_t body_begin = 0;  // '{' (or first statement char).
  size_t body_end = 0;    // One past the body.
};

std::vector<RangeForLoop> FindRangeFors(const std::string& code) {
  std::vector<RangeForLoop> loops;
  size_t pos = 0;
  while ((pos = FindWordToken(code, pos, "for")) != std::string::npos) {
    size_t head = pos;
    size_t after = SkipSpaces(code, pos + 3);
    pos += 3;
    if (after >= code.size() || code[after] != '(') continue;
    size_t close = MatchBracket(code, after, '(', ')');
    if (close == std::string::npos) continue;
    std::string head_expr = code.substr(after + 1, close - after - 2);
    // The range-for separator: a ':' that is not part of '::'.
    size_t colon = std::string::npos;
    for (size_t i = 0; i < head_expr.size(); ++i) {
      if (head_expr[i] != ':') continue;
      if ((i + 1 < head_expr.size() && head_expr[i + 1] == ':') ||
          (i > 0 && head_expr[i - 1] == ':')) {
        continue;
      }
      colon = i;
      break;
    }
    if (colon == std::string::npos) continue;
    RangeForLoop loop;
    loop.head = head;
    loop.container = head_expr.substr(colon + 1);
    size_t body = SkipSpaces(code, close);
    if (body < code.size() && code[body] == '{') {
      size_t end = MatchBracket(code, body, '{', '}');
      if (end == std::string::npos) continue;
      loop.body_begin = body;
      loop.body_end = end;
    } else {
      size_t end = code.find(';', body);
      if (end == std::string::npos) continue;
      loop.body_begin = body;
      loop.body_end = end + 1;
    }
    loops.push_back(std::move(loop));
  }
  return loops;
}

void CheckFileDeterminism(const SourceFile& f,
                          const std::set<std::string>& unordered_names,
                          std::vector<Diagnostic>* out) {
  const std::string& code = f.code;

  // Banned nondeterminism sources. Member calls stay exempt (sim.time()
  // reads the virtual clock, which is fine) via FindWordToken's
  // allow_member=false mode.
  for (const BannedToken& banned : kBanned) {
    const std::string token = banned.token;
    size_t pos = 0;
    while ((pos = FindWordToken(code, pos, token, /*allow_member=*/false)) !=
           std::string::npos) {
      out->push_back({f.rel_path, LineOfOffset(code, pos), "determinism",
                      "banned call '" + token + "': " + banned.why});
      pos += token.size();
    }
  }

  // Range-for over unordered containers needs an ordered-ok waiver.
  for (const RangeForLoop& loop : FindRangeFors(code)) {
    std::string name = TrailingIdentifier(loop.container);
    if (name.empty() || unordered_names.count(name) == 0) continue;
    size_t line_index = LineOfOffset(code, loop.head) - 1;
    if (HasWaiverNeedle(f.lines, line_index,
                        "contjoin-check: ordered-ok(")) {
      continue;
    }
    out->push_back(
        {f.rel_path, line_index + 1, "determinism",
         "iteration over unordered container '" + name +
             "' — hash-table order must not reach emission (sort the "
             "keys, use an ordered container, or waive with "
             "// contjoin-check: ordered-ok(<reason>))"});
  }
}

void CheckDeterminismWithIndex(const SymbolIndex& index,
                               std::vector<Diagnostic>* out) {
  for (const SourceFile& f : index.files) {
    CheckFileDeterminism(f, index.unordered_names, out);
  }
}

}  // namespace

void CheckDeterminism(const CheckConfig& config,
                      std::vector<Diagnostic>* out) {
  SymbolIndex index = BuildSymbolIndex(config.root);
  CheckDeterminismWithIndex(index, out);
}

// --- Rule 5: lint promotion ---------------------------------------------------

void CheckLintConfig(const CheckConfig& config,
                     std::vector<Diagnostic>* out) {
  const char* kPromoted[] = {"bugprone-use-after-move",
                             "bugprone-dangling-handle", "performance-*"};
  fs::path tidy = fs::path(config.root) / ".clang-tidy";
  if (!fs::exists(tidy)) {
    out->push_back({".clang-tidy", 0, "lint-config",
                    ".clang-tidy missing; the lint gate has no profile"});
    return;
  }
  std::string text = ReadFileText(tidy.string());
  std::vector<std::string> lines = SplitLines(text);

  // Collect the (possibly folded multi-line) values of the two keys.
  auto value_of = [&lines](const std::string& key) {
    std::string value;
    for (size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].rfind(key + ":", 0) != 0) continue;
      value = lines[i].substr(key.size() + 1);
      if (value.find('>') != std::string::npos ||
          value.find('|') != std::string::npos) {
        for (size_t j = i + 1;
             j < lines.size() && (lines[j].empty() || lines[j][0] == ' ');
             ++j) {
          value += " " + lines[j];
        }
      }
      break;
    }
    return value;
  };
  std::string checks = value_of("Checks");
  std::string errors = value_of("WarningsAsErrors");

  for (const char* check : kPromoted) {
    std::string family = std::string(check).substr(0, std::string(check).find('-'));
    bool enabled = checks.find(check) != std::string::npos ||
                   checks.find(family + "-*") != std::string::npos;
    if (!enabled) {
      out->push_back({".clang-tidy", 0, "lint-config",
                      std::string("promoted check '") + check +
                          "' is not enabled in Checks"});
    }
    if (errors.find(check) == std::string::npos) {
      out->push_back({".clang-tidy", 0, "lint-config",
                      std::string("promoted check '") + check +
                          "' must be listed in WarningsAsErrors "
                          "(warnings-as-errors lint gate)"});
    }
  }
}

// --- Rule 6: shard escape -----------------------------------------------------

namespace {

const char kShardWaiver[] = "contjoin-check: shard-ok(";

void CheckFileShardStatics(const SourceFile& f,
                           std::vector<Diagnostic>* out) {
  const std::string& stripped = f.code;

  // (a) Mutable static data. A `static` declarator is data when the first
  // structural token after the declaration's type+name is '=', ';' or '{'
  // — an opening paren first means a function. Template argument lists are
  // skipped so `static std::function<void()> f;` still reads as data.
  size_t pos = 0;
  while ((pos = FindWordToken(stripped, pos, "static")) !=
         std::string::npos) {
    size_t start = pos;
    pos += 6;
    size_t j = SkipSpaces(stripped, pos);
    // Immutable statics are shard-safe by construction.
    if (stripped.compare(j, 9, "constexpr") == 0 ||
        (stripped.compare(j, 5, "const") == 0 &&
         (j + 5 >= stripped.size() || !IsIdentChar(stripped[j + 5])))) {
      continue;
    }
    bool is_data = false;
    while (j < stripped.size()) {
      char c = stripped[j];
      if (c == '<') {
        size_t end = MatchBracket(stripped, j, '<', '>');
        if (end == std::string::npos) break;
        j = end;
        continue;
      }
      if (c == '(') break;  // Function declaration or definition.
      if (c == '=' || c == ';' || c == '{') {
        is_data = true;
        break;
      }
      ++j;
    }
    if (!is_data) continue;
    size_t line_index = LineOfOffset(stripped, start) - 1;
    if (HasWaiverNeedle(f.lines, line_index, kShardWaiver)) continue;
    out->push_back(
        {f.rel_path, line_index + 1, "shard-escape",
         "mutable static data in a role module — handlers for different "
         "node shards run concurrently under the parallel simulator core; "
         "keep state in NodeState (or waive with "
         "// contjoin-check: shard-ok(<reason>))"});
  }

  // (b) Shared engine RNG draws. The draw order of a process-wide RNG
  // depends on thread interleaving, so a role handler consuming it breaks
  // the bit-identical-at-any-worker-count contract.
  pos = 0;
  const std::string rng = "GetRng(";
  while ((pos = stripped.find(rng, pos)) != std::string::npos) {
    size_t start = pos;
    pos += rng.size();
    size_t line_index = LineOfOffset(stripped, start) - 1;
    if (HasWaiverNeedle(f.lines, line_index, kShardWaiver)) continue;
    out->push_back(
        {f.rel_path, line_index + 1, "shard-escape",
         "GetRng() draw in a role module — shared-RNG draw order depends "
         "on thread interleaving; derive randomness from per-node state "
         "(or waive with // contjoin-check: shard-ok(<reason>))"});
  }
}

/// Spans (paren-open .. matching close) of ctx.Transmit / ctx.ScheduleAfter
/// call arguments inside `fn` — closures passed there execute on the
/// destination node's shard, so StateOf(<that node>) inside them is not
/// an escape.
std::vector<std::pair<size_t, size_t>> DeferredClosureSpans(
    const SourceFile& f, const FunctionDef& fn) {
  std::vector<std::pair<size_t, size_t>> spans;
  for (const CallSite& call : fn.calls) {
    if (call.name != "Transmit" && call.name != "ScheduleAfter") continue;
    size_t end = MatchBracket(f.code, call.paren, '(', ')');
    if (end != std::string::npos) spans.emplace_back(call.paren, end);
  }
  return spans;
}

void CheckFileShardEscape(const SourceFile& f, const SymbolIndex& index,
                          size_t file_index, std::vector<Diagnostic>* out) {
  CheckFileShardStatics(f, out);

  // (c) Cross-shard writes: a role-module function may pass only its own
  // node parameter to StateOf — other nodes' state belongs to other
  // shards. Closures handed to ctx.Transmit / ctx.ScheduleAfter are
  // exempt: they run on the destination node's shard.
  for (size_t fn_index : index.functions_by_file[file_index]) {
    const FunctionDef& fn = index.functions[fn_index];
    std::vector<std::pair<size_t, size_t>> deferred =
        DeferredClosureSpans(f, fn);
    for (const CallSite& call : fn.calls) {
      if (call.name != "StateOf") continue;
      bool exempt = false;
      for (const auto& span : deferred) {
        if (call.paren > span.first && call.paren < span.second) {
          exempt = true;
          break;
        }
      }
      if (exempt) continue;
      size_t close = MatchBracket(f.code, call.paren, '(', ')');
      if (close == std::string::npos) continue;
      std::string arg =
          f.code.substr(call.paren + 1, close - call.paren - 2);
      std::string name = TrailingIdentifier(arg);
      if (!name.empty() && name == fn.owner_param) continue;
      size_t line_index = LineOfOffset(f.code, call.paren) - 1;
      if (HasWaiverNeedle(f.lines, line_index, kShardWaiver)) continue;
      out->push_back(
          {f.rel_path, line_index + 1, "shard-escape",
           "StateOf(" + arg + ") in '" + fn.name +
               "' escapes the owning shard (own node parameter: " +
               (fn.owner_param.empty() ? std::string("<none>")
                                       : fn.owner_param) +
               "); mutate other nodes only inside ctx.Transmit / "
               "ctx.ScheduleAfter closures (or waive with "
               "// contjoin-check: shard-ok(<reason>))"});
    }
  }

  // (d) Unordered iteration feeding a send loop — directly, or through
  // one helper call — leaks hash-table order into message emission order
  // even when each element is independently correct.
  for (const RangeForLoop& loop : FindRangeFors(f.code)) {
    std::string container = TrailingIdentifier(loop.container);
    if (container.empty() || index.unordered_names.count(container) == 0) {
      continue;
    }
    std::string via;
    for (size_t fn_index : index.functions_by_file[file_index]) {
      const FunctionDef& fn = index.functions[fn_index];
      for (const CallSite& call : fn.calls) {
        if (call.paren <= loop.body_begin || call.paren >= loop.body_end) {
          continue;
        }
        if (SendCallNames().count(call.name) > 0) {
          via = call.name;
          break;
        }
        auto targets = index.functions_by_name.find(call.name);
        if (targets == index.functions_by_name.end()) continue;
        for (size_t target : targets->second) {
          if (HasSendCall(index.functions[target])) {
            via = call.name + " -> send";
            break;
          }
        }
        if (!via.empty()) break;
      }
      if (!via.empty()) break;
    }
    if (via.empty()) continue;
    size_t line_index = LineOfOffset(f.code, loop.head) - 1;
    if (HasWaiverNeedle(f.lines, line_index, kShardWaiver)) continue;
    out->push_back(
        {f.rel_path, line_index + 1, "shard-escape",
         "iteration over unordered container '" + container +
             "' feeds a send path (" + via +
             ") — hash-table order would reach the wire; sort or use an "
             "ordered container (or waive with "
             "// contjoin-check: shard-ok(<reason>))"});
  }
}

void CheckShardEscapeWithIndex(const SymbolIndex& index,
                               std::vector<Diagnostic>* out) {
  for (size_t i = 0; i < index.files.size(); ++i) {
    const SourceFile& f = index.files[i];
    if (LayerOf(f.rel_path) != "core") continue;
    if (RoleModuleStems().count(StemOf(f.rel_path)) == 0) continue;
    CheckFileShardEscape(f, index, i, out);
  }
}

}  // namespace

void CheckShardEscape(const CheckConfig& config,
                      std::vector<Diagnostic>* out) {
  SymbolIndex index = BuildSymbolIndex(config.root);
  CheckShardEscapeWithIndex(index, out);
}

// --- Rule 7: protocol flow ----------------------------------------------------

namespace {

struct ProtocolSpec {
  bool found = false;
  std::string rel_path;
  std::set<std::string> msgs;
  std::map<std::string, size_t> msg_line;
  std::map<std::string, std::string> handler;
  std::set<std::string> critical;
  std::set<std::string> wire;
  std::map<std::pair<std::string, std::string>, size_t> sends;  // -> line
  std::vector<Diagnostic> parse_errors;
};

std::string SpecPathOf(const CheckConfig& config) {
  if (!config.protocol_spec.empty()) return config.protocol_spec;
  return (fs::path(config.root) / "tools" / "check" / "protocol.spec")
      .string();
}

std::string SpecRelPath(const CheckConfig& config, const std::string& path) {
  std::string root_prefix =
      fs::path(config.root).lexically_normal().generic_string();
  std::string norm = fs::path(path).lexically_normal().generic_string();
  if (!root_prefix.empty() && norm.rfind(root_prefix + "/", 0) == 0) {
    return norm.substr(root_prefix.size() + 1);
  }
  return norm;
}

ProtocolSpec LoadProtocolSpec(const CheckConfig& config) {
  ProtocolSpec spec;
  std::string path = SpecPathOf(config);
  spec.rel_path = SpecRelPath(config, path);
  if (!fs::exists(path)) return spec;
  spec.found = true;
  std::vector<std::string> lines = SplitLines(ReadFileText(path));
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string line = lines[i];
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::vector<std::string> words;
    size_t pos = 0;
    while (pos < line.size()) {
      pos = SkipSpaces(line, pos);
      size_t start = pos;
      while (pos < line.size() && !IsSpace(line[pos])) ++pos;
      if (pos > start) words.push_back(line.substr(start, pos - start));
    }
    if (words.empty()) continue;
    const std::string& directive = words[0];
    auto bad = [&](const std::string& why) {
      spec.parse_errors.push_back(
          {spec.rel_path, i + 1, "protocol-flow", "spec parse error: " + why});
    };
    if (directive == "msg" && words.size() == 2) {
      spec.msgs.insert(words[1]);
      spec.msg_line[words[1]] = i + 1;
    } else if (directive == "handler" && words.size() == 3) {
      spec.handler[words[1]] = words[2];
    } else if (directive == "critical" && words.size() == 2) {
      spec.critical.insert(words[1]);
    } else if (directive == "wire" && words.size() == 2) {
      spec.wire.insert(words[1]);
    } else if (directive == "send" && words.size() == 3) {
      spec.sends[{words[1], words[2]}] = i + 1;
    } else {
      bad("expected `msg|critical|wire <kType>`, `handler <kType> <role>` "
          "or `send <kType> <role>`, got '" + line + "'");
    }
  }
  return spec;
}

void CheckProtocolFlowWithIndex(const CheckConfig& config,
                                const SymbolIndex& index,
                                std::vector<Diagnostic>* out) {
  ProtocolGraph graph = ExtractProtocolGraph(index);
  ProtocolSpec spec = LoadProtocolSpec(config);
  if (graph.enums.empty() && !spec.found) return;  // Nothing to check.
  if (!spec.found) {
    out->push_back(
        {spec.rel_path, 0, "protocol-flow",
         "protocol.spec not found — declare the role x message flow "
         "graph (msg/handler/critical/wire/send lines) so protocol "
         "drift fails the lint gate"});
    return;
  }
  for (const Diagnostic& d : spec.parse_errors) out->push_back(d);

  std::set<std::string> enum_set(graph.enums.begin(), graph.enums.end());

  // Every enumerator declared; every declaration a real enumerator.
  for (const std::string& e : graph.enums) {
    if (spec.msgs.count(e) == 0) {
      out->push_back({spec.rel_path, 0, "protocol-flow",
                      "CqMsgType::" + e +
                          " is not declared in protocol.spec (add `msg " +
                          e + "` plus its handler/wire/send facts)"});
    }
  }
  for (const auto& [m, line] : spec.msg_line) {
    if (enum_set.count(m) == 0) {
      out->push_back({spec.rel_path, line, "protocol-flow",
                      "protocol.spec declares unknown enumerator " + m});
    }
  }

  for (const std::string& e : graph.enums) {
    // Handlers: dispatch table vs declared handling role.
    std::string extracted = graph.handler_of.count(e) > 0
                                ? graph.handler_of.at(e)
                                : std::string();
    auto declared = spec.handler.find(e);
    if (!extracted.empty() && declared == spec.handler.end()) {
      out->push_back({spec.rel_path, 0, "protocol-flow",
                      "CqMsgType::" + e + " is handled by role '" +
                          extracted +
                          "' but protocol.spec declares no handler (add "
                          "`handler " + e + " " + extracted + "`)"});
    } else if (extracted.empty() && declared != spec.handler.end()) {
      out->push_back({"src/core/dispatch.cc", 0, "protocol-flow",
                      "protocol.spec declares handler '" +
                          declared->second + "' for CqMsgType::" + e +
                          " but the default dispatch table does not "
                          "register one"});
    } else if (declared != spec.handler.end() &&
               extracted != declared->second) {
      out->push_back({"src/core/dispatch.cc", 0, "protocol-flow",
                      "CqMsgType::" + e + " is handled by role '" +
                          extracted + "' but protocol.spec declares '" +
                          declared->second + "'"});
    }

    // Criticality: reliability::IsCritical vs declared bit.
    bool ext_critical = graph.critical.count(e) > 0;
    bool spec_critical = spec.critical.count(e) > 0;
    if (ext_critical && !spec_critical) {
      out->push_back({spec.rel_path, 0, "protocol-flow",
                      "reliability::IsCritical marks CqMsgType::" + e +
                          " critical but protocol.spec does not (add "
                          "`critical " + e + "`)"});
    } else if (!ext_critical && spec_critical) {
      out->push_back({"src/core/reliability.cc", 0, "protocol-flow",
                      "protocol.spec marks CqMsgType::" + e +
                          " critical but reliability::IsCritical does "
                          "not return true for it"});
    }

    // Wire reachability: codec table vs declared bit.
    bool ext_wire = graph.has_codec.count(e) > 0;
    bool spec_wire = spec.wire.count(e) > 0;
    if (ext_wire && !spec_wire) {
      out->push_back({spec.rel_path, 0, "protocol-flow",
                      "CqMsgType::" + e +
                          " has a registered wire codec but protocol.spec "
                          "marks it simulator-only (add `wire " + e + "`)"});
    } else if (!ext_wire && spec_wire) {
      out->push_back({"src/core/codec.cc", 0, "protocol-flow",
                      "protocol.spec marks CqMsgType::" + e +
                          " transport-reachable but no wire codec is "
                          "registered for it"});
    }
  }

  // Send edges: extracted vs declared, plus the per-edge contracts.
  for (const auto& [e, roles] : graph.senders) {
    for (const auto& [role, armed] : roles) {
      std::pair<std::string, size_t> site{"", 0};
      auto site_types = graph.send_sites.find(e);
      if (site_types != graph.send_sites.end() &&
          site_types->second.count(role) > 0) {
        site = site_types->second.at(role);
      }
      if (spec.sends.count({e, role}) == 0) {
        out->push_back({site.first, site.second, "protocol-flow",
                        "role '" + role + "' sends CqMsgType::" + e +
                            " but protocol.spec declares no `send " + e +
                            " " + role + "` edge (protocol drift)"});
      }
      bool handled = graph.handler_of.count(e) > 0 &&
                     !graph.handler_of.at(e).empty();
      if (!handled) {
        out->push_back({site.first, site.second, "protocol-flow",
                        "CqMsgType::" + e + " is sent by role '" + role +
                            "' but never handled: the default dispatch "
                            "table registers no handler for it"});
      }
      if (spec.critical.count(e) > 0 && !armed) {
        out->push_back(
            {site.first, site.second, "protocol-flow",
             "critical message CqMsgType::" + e + " is sent raw by role '" +
                 role +
                 "' — route it through reliability::Arm/ArmAll/"
                 "SendReliable so delivery is retried"});
      }
      if (spec.wire.count(e) == 0) {
        out->push_back(
            {site.first, site.second, "protocol-flow",
             "simulator-only CqMsgType::" + e + " (no `wire " + e +
                 "` in protocol.spec) reaches the transport seam via a "
                 "role-module send path — it would be dropped on the "
                 "socket transport"});
      }
    }
  }
  for (const auto& [edge, line] : spec.sends) {
    const auto& [e, role] = edge;
    bool extracted = graph.senders.count(e) > 0 &&
                     graph.senders.at(e).count(role) > 0;
    if (!extracted) {
      out->push_back({spec.rel_path, line, "protocol-flow",
                      "protocol.spec declares `send " + e + " " + role +
                          "` but no such send site exists in the tree "
                          "(stale spec)"});
    }
  }
}

}  // namespace

ProtocolGraph ExtractProtocolGraph(const SymbolIndex& index) {
  ProtocolGraph graph;
  graph.enums = index.msg_enums;

  // Handling roles from the default dispatch table: the namespace
  // qualifier of the registered handler.
  for (size_t fi = 0; fi < index.files.size(); ++fi) {
    if (index.files[fi].rel_path != "src/core/dispatch.cc") continue;
    for (const TypedCall& reg :
         FindTypedCalls(index.files[fi].code, "Register")) {
      size_t sep = reg.args_tail.rfind("::");
      std::string role;
      if (sep != std::string::npos) {
        size_t end = sep;
        while (end > 0 && IsSpace(reg.args_tail[end - 1])) --end;
        size_t start = end;
        while (start > 0 && IsIdentChar(reg.args_tail[start - 1])) --start;
        role = reg.args_tail.substr(start, end - start);
      }
      if (graph.handler_of.count(reg.enumerator) == 0) {
        graph.handler_of[reg.enumerator] = role;
      }
    }
  }

  // Critical set: the case labels of reliability::IsCritical.
  auto critical_fns = index.functions_by_name.find("IsCritical");
  if (critical_fns != index.functions_by_name.end()) {
    for (size_t fn_index : critical_fns->second) {
      const FunctionDef& fn = index.functions[fn_index];
      const SourceFile& f = index.files[fn.file];
      if (StemOf(f.rel_path) != "reliability") continue;
      size_t pos = fn.body_begin;
      while ((pos = FindWordToken(f.code, pos, "case")) !=
                 std::string::npos &&
             pos < fn.body_end) {
        size_t j = SkipSpaces(f.code, pos + 4);
        pos += 4;
        if (f.code.compare(j, 11, "CqMsgType::") != 0) continue;
        j += 11;
        size_t start = j;
        while (j < f.code.size() && IsIdentChar(f.code[j])) ++j;
        if (j > start) graph.critical.insert(f.code.substr(start, j - start));
      }
    }
  }

  // Codec coverage.
  for (size_t fi = 0; fi < index.files.size(); ++fi) {
    if (index.files[fi].rel_path != "src/core/codec.cc") continue;
    for (const TypedCall& reg :
         FindTypedCalls(index.files[fi].code, "RegisterCodec")) {
      graph.has_codec.insert(reg.enumerator);
    }
  }

  // Reverse call map for the armed computation.
  std::map<std::string, std::vector<size_t>> callers_by_name;
  for (size_t i = 0; i < index.functions.size(); ++i) {
    std::set<std::string> seen;
    for (const CallSite& call : index.functions[i].calls) {
      if (seen.insert(call.name).second) {
        callers_by_name[call.name].push_back(i);
      }
    }
  }
  auto armed_near = [&index, &callers_by_name](size_t fn_index) {
    std::set<size_t> nbhd;
    auto add_callees = [&index, &nbhd](size_t gi) {
      for (const CallSite& call : index.functions[gi].calls) {
        auto targets = index.functions_by_name.find(call.name);
        if (targets == index.functions_by_name.end()) continue;
        for (size_t t : targets->second) nbhd.insert(t);
      }
    };
    nbhd.insert(fn_index);
    add_callees(fn_index);
    auto callers = callers_by_name.find(index.functions[fn_index].name);
    if (callers != callers_by_name.end()) {
      for (size_t gi : callers->second) {
        nbhd.insert(gi);
        add_callees(gi);
      }
    }
    for (size_t gi : nbhd) {
      if (HasWrapCall(index.functions[gi])) return true;
    }
    return false;
  };

  // Send edges: payload creations inside role-module (and submission)
  // functions, mapped through the payload-struct tag table.
  for (size_t fi = 0; fi < index.files.size(); ++fi) {
    const SourceFile& f = index.files[fi];
    if (LayerOf(f.rel_path) != "core") continue;
    std::string role = SendRoleOf(StemOf(f.rel_path));
    if (role.empty()) continue;
    for (size_t fn_index : index.functions_by_file[fi]) {
      const FunctionDef& fn = index.functions[fn_index];
      for (const PayloadCreation& creation : fn.creations) {
        auto tags = index.payload_tags.find(creation.type_name);
        if (tags == index.payload_tags.end()) continue;
        std::vector<std::string> selected;
        if (tags->second.size() > 1) {
          // A constructor tagging several types (TupleIndexPayload's
          // value_level ternary: true branch first) is disambiguated by a
          // boolean literal argument; ambiguous calls count as all tags.
          bool has_true =
              FindWordToken(creation.args, 0, "true") != std::string::npos;
          bool has_false =
              FindWordToken(creation.args, 0, "false") != std::string::npos;
          if (has_true && !has_false) {
            selected.push_back(tags->second[0]);
          } else if (has_false && !has_true) {
            selected.push_back(tags->second[1]);
          } else {
            selected = tags->second;
          }
        } else {
          selected = tags->second;
        }
        bool armed = armed_near(fn_index);
        for (const std::string& e : selected) {
          auto& entry = graph.senders[e][role];
          entry = entry || armed;
          if (graph.send_sites[e].count(role) == 0) {
            graph.send_sites[e][role] = {
                f.rel_path, LineOfOffset(f.code, creation.offset)};
          }
        }
      }
    }
  }
  return graph;
}

std::string RenderProtocolGraph(const ProtocolGraph& graph) {
  std::string out;
  for (const std::string& e : graph.enums) {
    out += e;
    auto handler = graph.handler_of.find(e);
    out += " handler=";
    out += (handler != graph.handler_of.end() && !handler->second.empty())
               ? handler->second
               : "-";
    if (graph.critical.count(e) > 0) out += " critical";
    if (graph.has_codec.count(e) > 0) out += " wire";
    out += " senders=";
    auto senders = graph.senders.find(e);
    if (senders == graph.senders.end() || senders->second.empty()) {
      out += "-";
    } else {
      bool first = true;
      for (const auto& [role, armed] : senders->second) {
        if (!first) out += ",";
        first = false;
        out += role;
        if (armed) out += "[armed]";
      }
    }
    out += "\n";
  }
  return out;
}

void CheckProtocolFlow(const CheckConfig& config,
                       std::vector<Diagnostic>* out) {
  SymbolIndex index = BuildSymbolIndex(config.root);
  CheckProtocolFlowWithIndex(config, index, out);
}

// --- Rule 8: hot-path hygiene -------------------------------------------------

namespace {

const char kHotWaiver[] = "contjoin-check: hot-ok(";

/// True when the line carries the hot marker itself (and not merely a
/// hot-ok waiver, whose needle shares the prefix).
bool IsHotMarkerLine(const std::string& line) {
  const std::string needle = "contjoin-check: hot";
  size_t pos = 0;
  while ((pos = line.find(needle, pos)) != std::string::npos) {
    size_t after = pos + needle.size();
    if (after >= line.size() || line[after] != '-') return true;
    pos = after;
  }
  return false;
}

bool IsHotFunction(const SourceFile& f, const FunctionDef& fn) {
  size_t def_index = fn.line - 1;  // 0-based line of the name.
  size_t first = def_index >= 2 ? def_index - 2 : 0;
  for (size_t i = first; i <= def_index && i < f.lines.size(); ++i) {
    if (IsHotMarkerLine(f.lines[i])) return true;
  }
  return false;
}

struct HotBan {
  const char* token;
  bool word = true;       // Word-boundary match (false: plain substring).
  bool needs_call = false;  // Must be followed by '(' or '{'.
  const char* why;
};

constexpr HotBan kHotBans[] = {
    {"new", true, false, "allocates on the per-message path"},
    {"make_unique", true, false, "allocates on the per-message path"},
    {"make_shared", true, false, "allocates on the per-message path"},
    {"std::string", false, true,
     "constructs a std::string temporary on the per-message path"},
    {"to_string", true, true,
     "constructs a std::string temporary on the per-message path"},
    {"ostringstream", true, false,
     "constructs a stream (allocation + locale) on the per-message path"},
    {"stringstream", true, false,
     "constructs a stream (allocation + locale) on the per-message path"},
    {"regex", false, false,
     "std::regex construction/matching is orders of magnitude too slow "
     "for a hot path (and the checker bans itself from it)"},
    {"lock_guard", true, false, "takes a lock on the per-message path"},
    {"unique_lock", true, false, "takes a lock on the per-message path"},
    {"scoped_lock", true, false, "takes a lock on the per-message path"},
    {"shared_lock", true, false, "takes a lock on the per-message path"},
    {"mutex", true, false, "takes a lock on the per-message path"},
    {".lock(", false, false, "takes a lock on the per-message path"},
};

void CheckHotPathWithIndex(const SymbolIndex& index,
                           std::vector<Diagnostic>* out) {
  for (const FunctionDef& fn : index.functions) {
    const SourceFile& f = index.files[fn.file];
    if (!IsHotFunction(f, fn)) continue;
    for (const HotBan& ban : kHotBans) {
      const std::string token = ban.token;
      size_t pos = fn.body_begin;
      while (pos < fn.body_end) {
        pos = ban.word ? FindWordToken(f.code, pos, token)
                       : f.code.find(token, pos);
        if (pos == std::string::npos || pos >= fn.body_end) break;
        size_t match = pos;
        pos += token.size();
        if (ban.needs_call) {
          size_t j = SkipSpaces(f.code, match + token.size());
          if (j >= f.code.size() || (f.code[j] != '(' && f.code[j] != '{')) {
            continue;
          }
        }
        size_t line_index = LineOfOffset(f.code, match) - 1;
        if (HasWaiverNeedle(f.lines, line_index, kHotWaiver)) continue;
        out->push_back(
            {f.rel_path, line_index + 1, "hotpath",
             "'" + token + "' in hot function '" + fn.name + "': " +
                 ban.why + " (waive with "
                 "// contjoin-check: hot-ok(<reason>))"});
      }
    }
  }
}

}  // namespace

void CheckHotPath(const CheckConfig& config, std::vector<Diagnostic>* out) {
  SymbolIndex index = BuildSymbolIndex(config.root);
  CheckHotPathWithIndex(index, out);
}

// --- Compile-database coverage ------------------------------------------------

namespace {

/// Values of every `"file": "<path>"` entry in a compile database,
/// unescaped.
std::set<std::string> CompileDbFiles(const std::string& db) {
  std::set<std::string> built;
  const std::string key = "\"file\"";
  size_t pos = 0;
  while ((pos = db.find(key, pos)) != std::string::npos) {
    pos += key.size();
    size_t j = SkipSpaces(db, pos);
    if (j >= db.size() || db[j] != ':') continue;
    j = SkipSpaces(db, j + 1);
    if (j >= db.size() || db[j] != '"') continue;
    std::string value;
    ++j;
    while (j < db.size() && db[j] != '"') {
      if (db[j] == '\\' && j + 1 < db.size()) ++j;
      value += db[j];
      ++j;
    }
    built.insert(fs::path(value).lexically_normal().generic_string());
    pos = j;
  }
  return built;
}

void CheckCompileDbWithIndex(const CheckConfig& config,
                             const SymbolIndex& index,
                             std::vector<Diagnostic>* out) {
  if (config.compile_db.empty()) return;
  if (!fs::exists(config.compile_db)) {
    out->push_back({config.compile_db, 0, "compile-db",
                    "compile database not found (configure with "
                    "CMAKE_EXPORT_COMPILE_COMMANDS=ON)"});
    return;
  }
  std::set<std::string> built = CompileDbFiles(ReadFileText(config.compile_db));
  for (const SourceFile& f : index.files) {
    if (fs::path(f.rel_path).extension() != ".cc") continue;
    fs::path abs = fs::absolute(fs::path(config.root) / f.rel_path)
                       .lexically_normal();
    bool found = built.count(abs.generic_string()) > 0;
    if (!found) {
      // Fall back to a suffix match (relative entries in the database).
      for (const std::string& b : built) {
        if (b.size() >= f.rel_path.size() &&
            b.compare(b.size() - f.rel_path.size(), f.rel_path.size(),
                      f.rel_path) == 0) {
          found = true;
          break;
        }
      }
    }
    if (!found) {
      out->push_back({f.rel_path, 0, "compile-db",
                      "translation unit missing from the compile database — "
                      "it is not built by any target (dead code or a "
                      "CMakeLists.txt omission)"});
    }
  }
}

}  // namespace

void CheckCompileDb(const CheckConfig& config, std::vector<Diagnostic>* out) {
  SymbolIndex index = BuildSymbolIndex(config.root);
  CheckCompileDbWithIndex(config, index, out);
}

void CheckLayering(const CheckConfig& config, std::vector<Diagnostic>* out) {
  SymbolIndex index = BuildSymbolIndex(config.root);
  CheckLayeringWithIndex(index, out);
}

// --- Driver -------------------------------------------------------------------

std::vector<Diagnostic> RunChecks(const CheckConfig& config,
                                  std::vector<RuleTiming>* timings) {
  std::vector<Diagnostic> out;
  auto timed = [timings](const char* rule, auto&& body) {
    auto t0 = std::chrono::steady_clock::now();
    body();
    if (timings != nullptr) {
      auto t1 = std::chrono::steady_clock::now();
      timings->push_back(
          {rule,
           std::chrono::duration<double, std::milli>(t1 - t0).count()});
    }
  };
  SymbolIndex index;
  timed("index", [&] { index = BuildSymbolIndex(config.root); });
  if (config.check_layering) {
    timed("layering", [&] { CheckLayeringWithIndex(index, &out); });
  }
  if (config.check_messages) {
    timed("messages", [&] { CheckMessages(config, &out); });
  }
  if (config.check_codecs) {
    timed("codecs", [&] { CheckCodecs(config, &out); });
  }
  if (config.check_determinism) {
    timed("determinism", [&] { CheckDeterminismWithIndex(index, &out); });
  }
  if (config.check_lint_config) {
    timed("lint-config", [&] { CheckLintConfig(config, &out); });
  }
  if (config.check_shard_escape) {
    timed("shard-escape", [&] { CheckShardEscapeWithIndex(index, &out); });
  }
  if (config.check_protocol_flow) {
    timed("protocol-flow",
          [&] { CheckProtocolFlowWithIndex(config, index, &out); });
  }
  if (config.check_hotpath) {
    timed("hotpath", [&] { CheckHotPathWithIndex(index, &out); });
  }
  timed("compile-db", [&] { CheckCompileDbWithIndex(config, index, &out); });
  std::sort(out.begin(), out.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return out;
}

std::string FormatDiagnostic(const Diagnostic& d) {
  std::string out = d.file;
  if (d.line > 0) out += ":" + std::to_string(d.line);
  out += ": [" + d.rule + "] " + d.message;
  return out;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string FormatDiagnosticsJson(const std::vector<Diagnostic>& diags) {
  std::string out = "[";
  for (size_t i = 0; i < diags.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n  {\"file\": \"" + JsonEscape(diags[i].file) +
           "\", \"line\": " + std::to_string(diags[i].line) +
           ", \"rule\": \"" + JsonEscape(diags[i].rule) +
           "\", \"message\": \"" + JsonEscape(diags[i].message) + "\"}";
  }
  out += diags.empty() ? "]\n" : "\n]\n";
  return out;
}

}  // namespace contjoin::check
