// Pass 1 of contjoin_check: a lightweight, purely textual symbol index
// over the checked tree. One scan loads every source file, blanks
// comments and string literals (offsets preserved), and extracts
//
//   - function/method definitions with body spans, the first chord::Node
//     parameter (the "owning" node a role handler may mutate), call
//     sites, and payload creations (make_shared<FooPayload>(...)),
//   - the CqMsgType enumerator list and the payload-struct -> enumerator
//     tag map from core/messages.h,
//   - every name declared anywhere with an unordered container type.
//
// Every rule family in pass 2 (checker.cc) shares this index instead of
// re-scanning lines, which is what lets the protocol-flow, shard-escape
// and hot-path rules reason across function boundaries while the whole
// tool stays regex-free and runs in milliseconds.
//
// The parser is deliberately heuristic (no libclang): it recognizes the
// project's house style, not arbitrary C++. Constructs it cannot parse
// (exotic constructor-initializer lists, operator overloads) are simply
// not indexed — the rules built on top only ever need the plain
// functions the protocol layer is written with.

#ifndef CONTJOIN_TOOLS_CHECK_SYMBOLS_H_
#define CONTJOIN_TOOLS_CHECK_SYMBOLS_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace contjoin::check {

struct SourceFile {
  std::string rel_path;  // Relative to the root, '/'-separated.
  std::string text;      // Raw bytes.
  std::vector<std::string> lines;  // Raw lines (waiver comments live here).
  std::string code;  // Comments AND string/char literals blanked; same
                     // length and line structure as `text`.
};

struct CallSite {
  std::string name;  // Last component: "reliability::Arm" -> "Arm".
  size_t paren = 0;  // Offset of the '(' in SourceFile::code.
};

struct PayloadCreation {
  std::string type_name;  // Last component of the template argument.
  std::string args;       // Constructor argument text (blanked literals).
  size_t offset = 0;      // Offset of the make_shared/make_unique token.
};

struct FunctionDef {
  size_t file = 0;      // Index into SymbolIndex::files.
  std::string name;     // Last component ("Dispatch", "RewriteT1").
  size_t name_offset = 0;
  size_t line = 0;      // 1-based line of the name.
  size_t params_begin = 0;  // Offset of '('.
  size_t params_end = 0;    // One past ')'.
  size_t body_begin = 0;    // Offset of '{'.
  size_t body_end = 0;      // One past '}'.
  std::string owner_param;  // Name of the first chord::Node&/Node* param;
                            // empty when the function owns no node.
  std::vector<CallSite> calls;
  std::vector<PayloadCreation> creations;
};

struct SymbolIndex {
  std::vector<SourceFile> files;
  std::vector<FunctionDef> functions;  // Sorted by (file, name_offset).
  // Name -> indices into `functions` (cross-file; overloads share a slot).
  std::map<std::string, std::vector<size_t>> functions_by_name;
  // Function indices per file, in definition order.
  std::vector<std::vector<size_t>> functions_by_file;
  // Names declared anywhere with an unordered container type.
  std::set<std::string> unordered_names;
  // Payload struct -> CqMsgType enumerator tags, in source order
  // (TupleIndexPayload carries two: the ternary's true branch first).
  std::map<std::string, std::vector<std::string>> payload_tags;
  // CqMsgType enumerators from src/core/messages.h, declaration order.
  std::vector<std::string> msg_enums;
};

/// Loads every .h/.cc under <root>/src and <root>/tools (fixture trees
/// under a testdata/ directory are skipped) and builds the index.
SymbolIndex BuildSymbolIndex(const std::string& root);

/// The file set alone (sorted by path), without symbol extraction.
std::vector<SourceFile> ListSources(const std::string& root);

// --- Shared text utilities ----------------------------------------------------

std::string ReadFileText(const std::string& path);
std::vector<std::string> SplitLines(const std::string& text);

/// Replaces // and /* */ comment bodies with spaces (newlines preserved).
std::string StripComments(const std::string& text);

/// StripComments plus blanking of string and character literals (raw
/// strings included); offsets and line numbers stay valid.
std::string BlankCommentsAndStrings(const std::string& text);

/// First path component after src/ ("src/core/engine.h" -> "core"); empty
/// for anything outside src/.
std::string LayerOf(const std::string& rel_path);

/// Filename without directory or extension ("src/core/rewriter.cc" ->
/// "rewriter").
std::string StemOf(const std::string& rel_path);

/// 1-based line number of a character offset.
size_t LineOfOffset(const std::string& text, size_t offset);

bool IsIdentChar(char c);

/// Offset one past the matching closer for the opener at `open`, or npos.
size_t MatchBracket(const std::string& text, size_t open, char open_ch,
                    char close_ch);

/// Next word-boundary occurrence of `token` at or after `pos`; the
/// character before the match must not be an identifier character, and
/// the character after must not extend the identifier when the token
/// ends in an identifier character. With allow_member=false a preceding
/// '.' also rejects the match, so member calls like sim.time() stay
/// exempt when scanning for banned free functions. Returns npos when
/// absent.
size_t FindWordToken(const std::string& text, size_t pos,
                     const std::string& token, bool allow_member = true);

/// Final identifier of an expression: "*groups" -> "groups",
/// "state.mw.alqt" -> "alqt"; empty when the expression ends in ')'/']'.
std::string TrailingIdentifier(const std::string& expr);

/// True when `lines[line_index]` or one of the two lines above it
/// contains `needle` (the standard waiver placement).
bool HasWaiverNeedle(const std::vector<std::string>& lines, size_t line_index,
                     const std::string& needle);

}  // namespace contjoin::check

#endif  // CONTJOIN_TOOLS_CHECK_SYMBOLS_H_
