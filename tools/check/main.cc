// CLI driver for contjoin_check. Exit status 0 when the tree is clean,
// 1 when any diagnostic fires, 2 on usage errors (including a --root
// that does not exist — a missing tree must not read as "clean").

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>

#include "checker.h"

namespace {

int Usage() {
  std::cerr
      << "usage: contjoin_check --root DIR [-p compile_commands.json] "
         "[--spec FILE] [--rule NAME]... [--format=json] [--timings] "
         "[--dump-graph]\n"
         "\n"
         "Rules (default: all): layering, messages, codecs, determinism, "
         "lint-config, shard-escape, protocol-flow, hotpath.\n"
         "(shard-safety is accepted as an alias for shard-escape.)\n"
         "The compile-database coverage check runs whenever -p is given.\n"
         "\n"
         "  --spec FILE    protocol spec path (default: "
         "<root>/tools/check/protocol.spec)\n"
         "  --format=json  emit diagnostics as a JSON array (CI artifact)\n"
         "  --timings      print per-rule-family wall time to stderr\n"
         "  --dump-graph   print the extracted role x message protocol "
         "graph and exit\n";
  return 2;
}

void DisableAllRules(contjoin::check::CheckConfig* config) {
  config->check_layering = config->check_messages = config->check_codecs =
      config->check_determinism = config->check_lint_config =
          config->check_shard_escape = config->check_protocol_flow =
              config->check_hotpath = false;
}

}  // namespace

int main(int argc, char** argv) {
  contjoin::check::CheckConfig config;
  bool rules_selected = false;
  bool json = false;
  bool timings = false;
  bool dump_graph = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      config.root = argv[++i];
    } else if (arg == "-p" && i + 1 < argc) {
      config.compile_db = argv[++i];
    } else if (arg == "--spec" && i + 1 < argc) {
      config.protocol_spec = argv[++i];
    } else if (arg == "--format=json") {
      json = true;
    } else if (arg == "--timings") {
      timings = true;
    } else if (arg == "--dump-graph") {
      dump_graph = true;
    } else if (arg == "--rule" && i + 1 < argc) {
      if (!rules_selected) {
        DisableAllRules(&config);
        rules_selected = true;
      }
      std::string rule = argv[++i];
      if (rule == "layering") {
        config.check_layering = true;
      } else if (rule == "messages") {
        config.check_messages = true;
      } else if (rule == "codecs") {
        config.check_codecs = true;
      } else if (rule == "determinism") {
        config.check_determinism = true;
      } else if (rule == "lint-config") {
        config.check_lint_config = true;
      } else if (rule == "shard-escape" || rule == "shard-safety") {
        config.check_shard_escape = true;
      } else if (rule == "protocol-flow") {
        config.check_protocol_flow = true;
      } else if (rule == "hotpath") {
        config.check_hotpath = true;
      } else {
        std::cerr << "unknown rule: " << rule << "\n";
        return Usage();
      }
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return Usage();
    }
  }
  if (config.root.empty()) return Usage();
  if (!std::filesystem::exists(config.root)) {
    std::cerr << "contjoin_check: --root " << config.root
              << " does not exist\n";
    return 2;
  }

  if (dump_graph) {
    contjoin::check::SymbolIndex index =
        contjoin::check::BuildSymbolIndex(config.root);
    std::cout << contjoin::check::RenderProtocolGraph(
        contjoin::check::ExtractProtocolGraph(index));
    return 0;
  }

  std::vector<contjoin::check::RuleTiming> rule_timings;
  std::vector<contjoin::check::Diagnostic> diags = contjoin::check::RunChecks(
      config, timings ? &rule_timings : nullptr);

  if (timings) {
    for (const auto& t : rule_timings) {
      std::fprintf(stderr, "contjoin_check: %-13s %8.2f ms\n",
                   t.rule.c_str(), t.millis);
    }
  }

  if (json) {
    std::cout << contjoin::check::FormatDiagnosticsJson(diags);
    return diags.empty() ? 0 : 1;
  }
  for (const auto& d : diags) {
    std::cout << contjoin::check::FormatDiagnostic(d) << "\n";
  }
  if (diags.empty()) {
    std::cout << "contjoin_check: clean\n";
    return 0;
  }
  std::cout << "contjoin_check: " << diags.size() << " finding"
            << (diags.size() == 1 ? "" : "s") << "\n";
  return 1;
}
