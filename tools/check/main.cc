// CLI driver for contjoin_check. Exit status 0 when the tree is clean,
// 1 when any diagnostic fires, 2 on usage errors.

#include <cstring>
#include <iostream>
#include <string>

#include "checker.h"

namespace {

int Usage() {
  std::cerr
      << "usage: contjoin_check --root DIR [-p compile_commands.json] "
         "[--rule NAME]...\n"
         "\n"
         "Rules (default: all): layering, messages, codecs, determinism, "
         "lint-config, shard-safety.\n"
         "The compile-database coverage check runs whenever -p is given.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  contjoin::check::CheckConfig config;
  bool rules_selected = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      config.root = argv[++i];
    } else if (arg == "-p" && i + 1 < argc) {
      config.compile_db = argv[++i];
    } else if (arg == "--rule" && i + 1 < argc) {
      if (!rules_selected) {
        config.check_layering = config.check_messages =
            config.check_codecs = config.check_determinism =
                config.check_lint_config = config.check_shard_safety = false;
        rules_selected = true;
      }
      std::string rule = argv[++i];
      if (rule == "layering") {
        config.check_layering = true;
      } else if (rule == "messages") {
        config.check_messages = true;
      } else if (rule == "codecs") {
        config.check_codecs = true;
      } else if (rule == "determinism") {
        config.check_determinism = true;
      } else if (rule == "lint-config") {
        config.check_lint_config = true;
      } else if (rule == "shard-safety") {
        config.check_shard_safety = true;
      } else {
        std::cerr << "unknown rule: " << rule << "\n";
        return Usage();
      }
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return Usage();
    }
  }
  if (config.root.empty()) return Usage();

  std::vector<contjoin::check::Diagnostic> diags =
      contjoin::check::RunChecks(config);
  for (const auto& d : diags) {
    std::cout << contjoin::check::FormatDiagnostic(d) << "\n";
  }
  if (diags.empty()) {
    std::cout << "contjoin_check: clean\n";
    return 0;
  }
  std::cout << "contjoin_check: " << diags.size() << " finding"
            << (diags.size() == 1 ? "" : "s") << "\n";
  return 1;
}
